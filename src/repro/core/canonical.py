"""Canonicality filters for embedding exploration (Definition 2).

An embedding is *canonical* when its vertex order equals the greedy
visiting order of its vertex set: start at the smallest id, then repeatedly
visit the smallest-id unvisited neighbor of the visited set.  Every
connected vertex set has exactly one canonical order, and each prefix of a
canonical order is itself canonical — so generating only canonical
embeddings yields every connected subgraph exactly once (completeness and
uniqueness, Section 3.1).

Two implementations are provided:

* the O(k) *incremental* check used by the explorer when appending one
  candidate vertex to an already-canonical embedding;
* a brute-force reconstruction used by tests and by engines (Arabesque's
  ODAG) that must re-check full embeddings.

The edge-induced analogue uses edge ids with the same greedy rule, where an
edge is visitable when it shares a vertex with the visited subgraph.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.graph import Graph

__all__ = [
    "extends_canonically",
    "is_canonical",
    "canonical_order",
    "edge_extends_canonically",
    "edge_is_canonical",
    "canonical_edge_order",
]


# ----------------------------------------------------------------------
# Vertex-induced
# ----------------------------------------------------------------------
def extends_canonically(graph: Graph, embedding: Sequence[int], candidate: int) -> bool:
    """Whether appending ``candidate`` to the canonical ``embedding``
    yields a canonical embedding (the incremental Definition-2 check).

    Conditions: the candidate is new, larger than the first vertex
    (property i), adjacent to some member (property ii), and larger than
    every member positioned after its first neighbor (property iii —
    otherwise the greedy order would have visited it earlier).
    """
    if candidate <= embedding[0]:
        return False
    first_neighbor = -1
    for idx, vertex in enumerate(embedding):
        if vertex == candidate:
            return False
        if first_neighbor < 0 and graph.has_edge(vertex, candidate):
            first_neighbor = idx
    if first_neighbor < 0:
        return False
    for idx in range(first_neighbor + 1, len(embedding)):
        if embedding[idx] > candidate:
            return False
    return True


def canonical_order(graph: Graph, vertices: Sequence[int]) -> tuple[int, ...]:
    """The unique canonical visiting order of a connected vertex set.

    Raises ``ValueError`` if the set does not induce a connected subgraph
    (then no canonical order exists).
    """
    remaining = set(int(v) for v in vertices)
    if not remaining:
        return ()
    current = min(remaining)
    order = [current]
    remaining.discard(current)
    visited = {current}
    while remaining:
        best = None
        for cand in remaining:
            if any(graph.has_edge(v, cand) for v in visited):
                if best is None or cand < best:
                    best = cand
        if best is None:
            raise ValueError(f"vertex set {sorted(visited | remaining)} is disconnected")
        order.append(best)
        visited.add(best)
        remaining.discard(best)
    return tuple(order)


def is_canonical(graph: Graph, embedding: Sequence[int]) -> bool:
    """Full re-check: does the embedding equal its canonical order?"""
    try:
        return tuple(int(v) for v in embedding) == canonical_order(graph, embedding)
    except ValueError:
        return False


# ----------------------------------------------------------------------
# Edge-induced
# ----------------------------------------------------------------------
def _edge_touches(edge: tuple[int, int], vertices: set[int]) -> bool:
    return edge[0] in vertices or edge[1] in vertices


def edge_extends_canonically(
    edges: Sequence[tuple[int, int]],
    edge_ids: Sequence[int],
    candidate_edge: tuple[int, int],
    candidate_id: int,
) -> bool:
    """Incremental canonicality for edge-induced embeddings.

    ``edges``/``edge_ids`` describe the current canonical embedding in
    order; the candidate must be new, have a larger id than the first edge,
    touch the subgraph, and have a larger id than every edge after the
    point at which it first became reachable.
    """
    if candidate_id <= edge_ids[0]:
        return False
    vertices: set[int] = set()
    first_reachable = -1
    for idx, (edge, eid) in enumerate(zip(edges, edge_ids)):
        if eid == candidate_id:
            return False
        vertices.add(edge[0])
        vertices.add(edge[1])
        if first_reachable < 0 and _edge_touches(candidate_edge, vertices):
            first_reachable = idx
    if first_reachable < 0:
        return False
    for idx in range(first_reachable + 1, len(edge_ids)):
        if edge_ids[idx] > candidate_id:
            return False
    return True


def canonical_edge_order(
    edges: Sequence[tuple[int, int]], edge_ids: Sequence[int]
) -> tuple[int, ...]:
    """The unique canonical order of a connected edge set, as edge ids."""
    id_to_edge = dict(zip((int(e) for e in edge_ids), (tuple(e) for e in edges)))
    remaining = set(id_to_edge)
    if not remaining:
        return ()
    current = min(remaining)
    order = [current]
    remaining.discard(current)
    vertices = set(id_to_edge[current])
    while remaining:
        best = None
        for eid in remaining:
            if _edge_touches(id_to_edge[eid], vertices):
                if best is None or eid < best:
                    best = eid
        if best is None:
            raise ValueError("edge set is disconnected")
        order.append(best)
        vertices.update(id_to_edge[best])
        remaining.discard(best)
    return tuple(order)


def edge_is_canonical(
    edges: Sequence[tuple[int, int]], edge_ids: Sequence[int]
) -> bool:
    """Full re-check for an ordered edge-induced embedding."""
    try:
        return tuple(int(e) for e in edge_ids) == canonical_edge_order(edges, edge_ids)
    except ValueError:
        return False
