"""Unit tests for the synthetic generators."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph import (
    chung_lu,
    ensure_connected_core,
    erdos_renyi,
    preferential_attachment,
    rmat,
    zipf_labels,
)


def test_erdos_renyi_exact_edge_count():
    g = erdos_renyi(50, 100, seed=1)
    assert g.num_vertices == 50
    assert g.num_edges == 100


def test_determinism_same_seed():
    a = chung_lu(100, 300, seed=9, num_labels=4)
    b = chung_lu(100, 300, seed=9, num_labels=4)
    assert list(a.edges()) == list(b.edges())
    assert a.labels.tolist() == b.labels.tolist()


def test_different_seed_differs():
    a = chung_lu(100, 300, seed=9)
    b = chung_lu(100, 300, seed=10)
    assert list(a.edges()) != list(b.edges())


def test_chung_lu_skewed_degrees():
    g = chung_lu(500, 2000, seed=3)
    degrees = np.sort(g.degrees())[::-1]
    # Power-law-ish: the top vertex should dominate the median heavily.
    assert degrees[0] >= 5 * max(1, np.median(degrees))


def test_preferential_attachment_connected():
    g = preferential_attachment(80, 2, seed=5)
    assert g.num_edges >= 2 * (80 - 3)
    assert np.all(g.degrees() > 0)


def test_preferential_attachment_validates():
    with pytest.raises(GraphConstructionError):
        preferential_attachment(3, 5, seed=1)


def test_rmat_shape():
    g = rmat(7, 200, seed=2)
    assert g.num_vertices == 128
    assert 0 < g.num_edges <= 200


def test_rmat_probs_must_sum():
    with pytest.raises(GraphConstructionError):
        rmat(5, 50, seed=1, probs=(0.5, 0.5, 0.5, 0.5))


def test_zipf_labels_all_present():
    labels = zipf_labels(200, 10, seed=4)
    assert set(labels.tolist()) == set(range(10))


def test_zipf_labels_skewed():
    labels = zipf_labels(5000, 8, seed=4)
    counts = np.bincount(labels, minlength=8)
    assert counts[0] > counts[-1]


def test_ensure_connected_core_removes_isolates():
    g = erdos_renyi(60, 30, seed=11)
    fixed = ensure_connected_core(g, seed=1)
    assert np.all(fixed.degrees() > 0)
    assert fixed.labels.tolist() == g.labels.tolist()


def test_ensure_connected_core_noop_when_clean():
    g = preferential_attachment(40, 2, seed=6)
    assert ensure_connected_core(g) is g
