"""The Kaleido engine: a plan → execute → aggregate pipeline (Sections 3-5).

One :class:`KaleidoEngine` instance runs one mining application over one
graph.  Each exploration iteration flows through three explicit stages:

* **Plan** (:class:`repro.core.plan.Planner`): predict candidate sizes,
  cut the level into balanced parts, check the ``max_embeddings`` guard,
  and decide whether the new level lives in memory or spills to disk
  (the hybrid storage policy, driven by the memory budget).
* **Execute** (:mod:`repro.core.executor`): run the per-part expansion
  functions through the configured :class:`PartExecutor` — serial with
  the work-stealing replay by default (the modelled-parallel behaviour
  every benchmark is built on), or a real thread pool — and merge the
  part results deterministically.
* **Aggregate**: run the application's Mapper over the top level in the
  same part-based shape through the same executor, then the serial
  Reducer.

Every live data structure is accounted in a :class:`MemoryMeter`, and the
per-stage wall times are reported in ``MiningResult.phase_spans`` as
``plan_seconds`` / ``execute_seconds`` / ``aggregate_seconds``.
"""

from __future__ import annotations

import logging
import pickle
import time
from contextlib import nullcontext
from functools import partial
from itertools import islice
from typing import Callable

import numpy as np

from ..balance.worksteal import Schedule
from ..errors import BudgetExceededError, DiskFullError, StorageError, TransientStorageError
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from ..obs.bridge import absorb_engine
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from ..storage.checkpoint import RunCheckpoint
from ..storage.hybrid import StoragePolicy
from ..storage.meter import MemoryBudget, MemoryMeter
from ..storage.retry import RetryPolicy
from ..storage.spill import PartStore
from .api import EngineContext, MiningApplication, MiningResult, PatternMap
from .cse import CSE
from .eigenhash import PatternHasher
from .executor import PartExecutor, resolve_executor
from .explore import expand_edge_level, expand_vertex_level
from .kernels import DEFAULT_ID_DTYPE
from .plan import Planner

#: Storage failures the engine responds to by degrading the I/O mode
#: (drop prefetch, then synchronous writes) and re-planning the level.
_DEGRADABLE_ERRORS = (DiskFullError, BudgetExceededError, TransientStorageError)

#: Version tag of the pickled run-state blob inside mid-run checkpoints.
_RUN_STATE_VERSION = 1

__all__ = ["KaleidoEngine", "aggregate_part"]

logger = logging.getLogger("repro.engine")


def aggregate_part(
    app: MiningApplication, ctx: EngineContext, embeddings: list[tuple[int, ...]]
) -> tuple[PatternMap, object]:
    """Run the AggregatingMapper over one part's embeddings.

    Pure per-part function (each part owns its own PatternMap and its own
    ``start_part`` state — the paper's FSM avoids a concurrent hashmap
    the same way), so mapper parts go through the same executor seam as
    expansion parts.  Returns ``(pmap, part_state)``; the engine hands
    the part states to ``app.finish_part`` in part-index order, so apps
    with positional side outputs (FSM's per-iteration hash list,
    materialised matches) stay deterministic under concurrent executors.
    """
    pmap: PatternMap = {}
    part = app.start_part(ctx)
    if part is None:
        for emb in embeddings:
            app.map_embedding(ctx, emb, pmap)
    else:
        for emb in embeddings:
            app.map_embedding(ctx, emb, pmap, part)
    return pmap, part


class KaleidoEngine:
    """Configurable two-phase graph mining engine.

    An engine is a reusable *session* over one graph: construct it once
    and call :meth:`run` many times.  Everything expensive survives
    between runs — the executor's worker pool, the pattern-hash caches,
    the graph's derived structures (adjacency views, and the edge index
    built lazily on the first edge-induced run) — so a long-running
    caller (the service tier) pays the setup cost once per session, not
    once per query.  Runs on one engine must be serialized by the
    caller; for concurrent queries, give each its own engine and share
    the executor instance and the hasher across them (both are
    thread-safe), which is exactly what
    :class:`repro.service.MiningService` does.

    Parameters
    ----------
    graph:
        The input graph.
    workers:
        Worker count: the modelled worker count for the work-stealing
        replay, and the thread-pool size for the ``"threads"`` executor.
    hasher:
        Isomorphism fingerprinter; defaults to the paper's EigenHash.
        Pass ``repro.baselines.BlissLikeHasher()`` for the Fig.-12 study.
    memory_limit_bytes:
        Budget for intermediate data; exceeding it spills CSE levels.
    storage_mode:
        ``"auto"`` (spill when over budget), ``"memory"`` (never spill;
        budget ignored), or ``"spill-last"`` (always spill newly explored
        levels — the Table-4 "hybrid" configuration).
    use_prediction:
        Partition exploration work by predicted candidate sizes (paper
        default) or by plain embedding counts (the Fig.-17 baseline).
    parts_per_worker:
        Task granularity for the executor and the scheduler model.
    synchronous_io / prefetch:
        Writing-queue and sliding-window behaviour (async + prefetch by
        default, like the paper; tests turn them off for determinism).
    executor:
        ``"serial"`` (default: serial execution replayed through the
        work-stealing model), ``"threads"`` (a real thread pool of
        ``workers`` threads), ``"processes"`` (a real spawn-based process
        pool of ``workers`` workers for the vectorized block tasks; other
        stages run inline), or any :class:`PartExecutor` instance.  Part
        results are merged in part order, so every executor produces
        identical mining results.  Executors resolved from a spec string
        are closed with the engine; instances are caller-owned.
    queue_maxsize:
        Bound on the writing queue's in-flight arrays (producer
        backpressure).
    io_retry:
        Retry policy for transient storage faults (capped exponential
        backoff); defaults to :class:`~repro.storage.retry.RetryPolicy`'s
        defaults.
    checkpoint_dir / checkpoint_every:
        When ``checkpoint_dir`` is set, the engine writes an atomic,
        checksummed per-level checkpoint after every
        ``checkpoint_every``-th exploration iteration; crash debris in
        the directory is garbage-collected at construction, and
        ``run(app, resume=True)`` restarts from the deepest valid level.
    on_checkpoint:
        Optional ``(iteration, path)`` callback fired after each
        checkpoint lands (operational hook; crash-recovery tests use it
        to kill the run at exact iteration boundaries).
    tracer:
        A :class:`repro.obs.Tracer` to record the run's span tree
        (``run → level → {plan, execute, aggregate} → part``) and
        instant events (spill, demote, prefetch hit/miss, retry,
        degradation, checkpoint, checkpoint-restore).  Defaults to the
        no-op tracer, which costs a single attribute check per probe and
        never changes mined results (parity-tested).
    metrics:
        A :class:`repro.obs.MetricsRegistry` to collect the run's
        counters/gauges/histograms (``io.*``, ``mem.*``, ``queue.*``,
        ``hasher.*``, ``storage.*``, ``checkpoint.*``).  A fresh
        registry is created when not given; read it back from
        ``engine.metrics``.
    sanitize:
        Run the application under the runtime sanitizers.  The
        part-purity sanitizer
        (:class:`repro.analysis.PartPuritySanitizer`) raises
        :class:`~repro.errors.PartPurityError` on any application
        attribute write while the executor is running per-part tasks —
        a race detector for shared mapper state.  The lock-order
        sanitizer (:class:`repro.analysis.LockOrderSanitizer`) wraps
        the executor's and hasher's locks and raises
        :class:`~repro.errors.LockOrderError` if any two are ever taken
        in inconsistent orders.  A well-behaved app produces
        byte-identical results with or without either.
    """

    def __init__(
        self,
        graph: Graph,
        workers: int = 1,
        hasher: PatternHasher | None = None,
        memory_limit_bytes: int | None = None,
        storage_mode: str = "auto",
        spill_dir: str | None = None,
        use_prediction: bool = True,
        parts_per_worker: int = 4,
        synchronous_io: bool = False,
        prefetch: bool = True,
        prefetch_depth: int = 1,
        adaptive_io: bool = True,
        max_embeddings: int | None = None,
        executor: "str | PartExecutor" = "serial",
        queue_maxsize: int = 16,
        io_retry: RetryPolicy | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 1,
        on_checkpoint: Callable[[int, str], None] | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
        sanitize: bool = False,
        use_restrictions: bool = True,
    ) -> None:
        if storage_mode not in ("auto", "memory", "spill-last"):
            raise ValueError(f"unknown storage_mode {storage_mode!r}")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        self.graph = graph
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.hasher = hasher if hasher is not None else PatternHasher()
        self.meter = MemoryMeter()
        self.budget = MemoryBudget(memory_limit_bytes)
        self.storage_mode = storage_mode
        self.use_prediction = use_prediction
        self.parts_per_worker = parts_per_worker
        self.synchronous_io = synchronous_io
        self.prefetch = prefetch
        #: Safety valve: abort (PlanError) if any level would exceed this
        #: many embeddings.  Exploration is exponential in depth; a guard
        #: beats an out-of-control run in production settings.
        self.max_embeddings = max_embeddings
        self.executor = resolve_executor(executor)
        # Executors resolved from a spec string are engine-owned: close()
        # reaps their pools.  Caller-supplied instances stay caller-owned.
        self._owns_executor = not isinstance(executor, PartExecutor)
        self._store: PartStore | None = (
            PartStore(spill_dir, retry=io_retry, tracer=self.tracer, metrics=self.metrics)
            if spill_dir is not None
            else None
        )
        self._policy = StoragePolicy(
            self.budget,
            self.meter,
            store=self._store,
            synchronous_io=synchronous_io,
            prefetch=prefetch,
            force_spill_last=(storage_mode == "spill-last"),
            queue_maxsize=queue_maxsize,
            retry=io_retry,
            tracer=self.tracer,
            metrics=self.metrics,
            prefetch_depth=prefetch_depth,
            adaptive_io=adaptive_io,
        )
        #: Whether plans fuse symmetry-breaking restrictions into the
        #: vectorized kernels (the --no-restrictions escape hatch turns
        #: this off; mined results are byte-identical either way).
        self.use_restrictions = use_restrictions
        self.planner = Planner(
            graph,
            self._policy,
            workers=workers,
            parts_per_worker=parts_per_worker,
            use_prediction=use_prediction,
            storage_mode=storage_mode,
            max_embeddings=max_embeddings,
            use_restrictions=use_restrictions,
        )
        self.sanitize = sanitize
        #: Active PartPuritySanitizer while a sanitized run is in flight.
        self._sanitizer = None
        #: Active LockOrderSanitizer while a sanitized run is in flight.
        self._lock_sanitizer = None
        #: Lazily built EdgeIndex, shared across this session's runs.
        self._edge_index: EdgeIndex | None = None
        #: How many runs this session has completed.
        self.runs_completed = 0
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self._checkpoints: RunCheckpoint | None = None
        self._checkpoints_written = 0
        self._checkpoint_failures = 0
        if checkpoint_dir is not None:
            self._checkpoints = RunCheckpoint(checkpoint_dir)
            self._checkpoints.collect_garbage()

    # ------------------------------------------------------------------
    def run(
        self,
        app: MiningApplication,
        resume: bool = False,
        max_embeddings: "int | None" = -1,
    ) -> MiningResult:
        """Run one application start to finish and report costs.

        An engine may run many applications back to back; session state
        (worker pools, hash caches, the edge index) is reused, and
        per-run measurements accumulate into ``self.metrics`` (counters
        sum across runs — the useful reading for repeated-run callers).

        With ``resume=True`` (requires ``checkpoint_dir``), the run
        restarts from the deepest valid mid-run checkpoint instead of
        from scratch; an empty or absent checkpoint directory simply
        starts over.  The resumed run produces the same final pattern
        map as an uninterrupted one.

        ``max_embeddings`` overrides the engine-wide exploration guard
        for this run only (``None`` lifts it) — the service tier threads
        each query's budget through here.  The default sentinel ``-1``
        keeps the engine's configured guard.

        The run is recorded on ``self.tracer`` as one ``run`` span with
        nested ``level → {plan, execute, aggregate} → part`` children,
        and the run's measurements are folded into ``self.metrics``
        when it finishes.  Tracing never changes mined results.
        """
        if self.sanitize:
            from ..analysis.sanitizer import LockOrderSanitizer, PartPuritySanitizer

            sanitizer = PartPuritySanitizer(app)
            lock_sanitizer = LockOrderSanitizer()
            # The engine's lock-bearing collaborators: the executor's
            # pool bookkeeping and the hasher's cache statistics.
            lock_sanitizer.instrument(self.executor)
            lock_sanitizer.instrument(self.hasher)
        else:
            sanitizer = None
            lock_sanitizer = None
        self._sanitizer = sanitizer
        self._lock_sanitizer = lock_sanitizer
        guard_before = self.planner.max_embeddings
        if max_embeddings != -1:
            self.planner.max_embeddings = max_embeddings
        try:
            with lock_sanitizer if lock_sanitizer is not None else nullcontext():
                with sanitizer if sanitizer is not None else nullcontext():
                    with self.tracer.span("run", app=app.name, graph=self.graph.name):
                        result = self._run(app, resume)
        finally:
            self._sanitizer = None
            self._lock_sanitizer = None
            self.planner.max_embeddings = guard_before
        self.runs_completed += 1
        absorb_engine(self.metrics, self)
        return result

    def _hot_phase(self):
        """Sanitizer window around executor part runs (no-op otherwise)."""
        if self._sanitizer is None:
            return nullcontext()
        return self._sanitizer.hot_phase()

    def _run(self, app: MiningApplication, resume: bool) -> MiningResult:
        started = time.perf_counter()
        schedules: list[Schedule] = []
        schedule_phases: list[str] = []
        phase_spans: dict[str, float] = {}
        plan_seconds = 0.0
        execute_seconds = 0.0
        aggregate_seconds = 0.0

        ctx = EngineContext(graph=self.graph, engine=self)
        self.meter.set("graph", self.graph.nbytes)
        if app.induced == "edge":
            # Session reuse: the edge index is a pure function of the
            # graph, so build it once and share it across runs.
            if self._edge_index is None:
                self._edge_index = EdgeIndex(self.graph)
            ctx.edge_index = self._edge_index
            self.meter.set("edge_index", ctx.edge_index.nbytes)
        elif app.induced != "vertex":
            raise ValueError(f"unknown induced mode {app.induced!r}")

        # The default accept-everything filter means "no filter": passing
        # None routes expansion through the vectorized block kernels; an
        # overridden filter forces the scalar per-candidate fallback.
        emb_filter = app.embedding_filter if app.overrides_embedding_filter() else None

        # Compile the app's query pattern (if it has one) into its
        # symmetry-breaking restriction set so level plans carry the
        # per-level ordering constraints alongside the fused kernel
        # bounds.
        pattern_restrictions = self.planner.pattern_restrictions(app)
        self.planner.active_restriction_set = pattern_restrictions

        roots = app.init(ctx)
        cse = CSE(roots)
        reduced: PatternMap = {}
        aggregated = False
        start_iteration = 0
        resumed_from: int | None = None
        if resume:
            restored = self._restore(ctx, app, roots)
            if restored is not None:
                cse, reduced, aggregated, start_iteration, resumed_from = restored
        self.meter.set("cse", cse.nbytes_in_memory)
        level_sizes = [cse.size(idx) for idx in range(cse.depth)]

        # ---------------- Phase 1: embedding exploration ----------------
        explore_span = 0.0
        total_iterations = app.iterations()
        if aggregated and cse.size() == 0:
            # The checkpointed run had already pruned every embedding away;
            # nothing left to explore.
            start_iteration = total_iterations
        for iteration in range(start_iteration, total_iterations):
            self.tracer.begin("level", index=iteration, size=cse.size())
            try:
                # Stages 1+2: plan then execute, re-planning under a
                # degraded I/O mode when the device fills up mid-level
                # (the failed level's partial parts were already
                # discarded by the sink).
                while True:
                    stage_started = time.perf_counter()
                    try:
                        with self.tracer.span("plan", depth=cse.depth):
                            plan = self.planner.plan_level(ctx, cse)
                    except _DEGRADABLE_ERRORS as exc:
                        plan_seconds += time.perf_counter() - stage_started
                        self._degrade_or_raise("plan", exc)
                        continue
                    plan_seconds += time.perf_counter() - stage_started

                    stage_started = time.perf_counter()
                    try:
                        with self.tracer.span(
                            "execute", parts=plan.num_parts, spill=plan.spill
                        ), self._hot_phase():
                            if app.induced == "vertex":
                                stats = expand_vertex_level(
                                    self.graph,
                                    cse,
                                    emb_filter,
                                    parts=plan.part_bounds,
                                    sink=plan.sink,
                                    executor=self.executor,
                                    workers=self.workers,
                                    tracer=self.tracer,
                                    restrictions=plan.restrictions,
                                )
                            else:
                                assert ctx.edge_index is not None
                                stats = expand_edge_level(
                                    self.graph,
                                    ctx.edge_index,
                                    cse,
                                    emb_filter,
                                    parts=plan.part_bounds,
                                    sink=plan.sink,
                                    executor=self.executor,
                                    workers=self.workers,
                                    tracer=self.tracer,
                                    restrictions=plan.restrictions,
                                )
                    except _DEGRADABLE_ERRORS as exc:
                        execute_seconds += time.perf_counter() - stage_started
                        self._degrade_or_raise("execute", exc)
                        continue
                    stage_elapsed = time.perf_counter() - stage_started
                    execute_seconds += stage_elapsed
                    # Feed the adaptive I/O scheduler: this level's compute
                    # rate (emitted bytes / wall) and the store's read-rate
                    # deltas steer the next level's part size and depth.
                    self._policy.observe_level(
                        stats.emitted,
                        stats.emitted
                        * getattr(cse.top, "dtype", DEFAULT_ID_DTYPE).itemsize,
                        stage_elapsed,
                    )
                    break

                schedule = stats.schedule
                assert schedule is not None
                schedules.append(schedule)
                schedule_phases.append("explore")
                explore_span += schedule.span_seconds
                level_sizes.append(cse.size())
                self.meter.set("cse", cse.nbytes_in_memory)
                logger.debug(
                    "%s: level %d -> %d embeddings (%d candidates examined, "
                    "%.3fs span, %.2f MB accounted)",
                    app.name, cse.depth, cse.size(), stats.candidates_examined,
                    schedule.span_seconds, self.meter.current_bytes / 1e6,
                )

                if app.aggregate_every_iteration:
                    reduced, agg_span, agg_wall = self._aggregate(
                        ctx, app, cse, schedules, schedule_phases
                    )
                    aggregated = True
                    explore_span += agg_span
                    aggregate_seconds += agg_wall
                    mask = app.prune(ctx, cse, reduced)
                    if mask is not None:
                        cse.filter_top_level(mask)
                        level_sizes[-1] = cse.size()
                        self.meter.set("cse", cse.nbytes_in_memory)
                self._maybe_checkpoint(ctx, app, cse, iteration, reduced, aggregated)
            finally:
                self.tracer.end("level")
            if app.aggregate_every_iteration and cse.size() == 0:
                break
        phase_spans["explore"] = explore_span

        # ---------------- Phase 2: pattern aggregation ------------------
        if not app.aggregate_every_iteration or not aggregated:
            reduced, agg_span, agg_wall = self._aggregate(
                ctx, app, cse, schedules, schedule_phases
            )
            phase_spans["aggregate"] = agg_span
            aggregate_seconds += agg_wall

        simulated_seconds = sum(phase_spans.values())
        phase_spans["plan_seconds"] = plan_seconds
        phase_spans["execute_seconds"] = execute_seconds
        phase_spans["aggregate_seconds"] = aggregate_seconds

        value = app.finalize(ctx, cse, reduced)
        wall = time.perf_counter() - started
        logger.info(
            "%s over %s: %.3fs wall, %d patterns, peak %.2f MB",
            app.name, self.graph.name, wall, len(reduced),
            self.meter.peak_bytes / 1e6,
        )
        io_read, io_written = self._io_totals()
        result = MiningResult(
            app_name=app.name,
            value=value,
            pattern_map=reduced,
            wall_seconds=wall,
            simulated_seconds=simulated_seconds,
            peak_memory_bytes=self.meter.peak_bytes,
            level_sizes=level_sizes,
            phase_spans=phase_spans,
            io_bytes_read=io_read,
            io_bytes_written=io_written,
            memory_snapshot=self.meter.snapshot(),
            schedules=schedules,
            utilization=(
                sum(s.busy_seconds for s in schedules)
                / max(
                    1e-12,
                    sum(s.span_seconds * s.num_workers for s in schedules),
                )
            ),
            extra={
                "schedule_phases": schedule_phases,
                "executor": self.executor.name,
                "hasher_cache_entries": len(self.hasher)
                if hasattr(self.hasher, "__len__")
                else None,
                "spilled_levels": self._policy.spilled_levels,
                "demoted_levels": self._policy.demoted_levels,
                "io_mode": self._policy.io_mode,
                "io_plan": (
                    None
                    if self._policy.last_io_plan is None
                    else self._policy.last_io_plan.as_dict()
                ),
                "degradations": list(self._policy.degradations),
                "resumed_from_level": resumed_from,
                "checkpoints_written": self._checkpoints_written,
                "checkpoint_failures": self._checkpoint_failures,
                "io_retries": self._io_counter("retries"),
                "io_failed_deletes": self._io_counter("failed_deletes"),
                "sanitize": self.sanitize,
                "restrictions": self.use_restrictions,
                "pattern_restrictions": (
                    None
                    if pattern_restrictions is None
                    else [
                        (r.smaller, r.larger)
                        for r in pattern_restrictions.restrictions
                    ]
                ),
            },
        )
        return result

    # ------------------------------------------------------------------
    # Robustness plumbing: degradation, checkpointing, resume
    # ------------------------------------------------------------------
    def _io_counter(self, name: str) -> int:
        store = self._policy.store
        return 0 if store is None else getattr(store.io, name)

    def _degrade_or_raise(self, stage: str, exc: StorageError) -> None:
        """Step the storage policy down one I/O mode, or re-raise."""
        step = self._policy.degrade()
        if step is None:
            raise exc
        if self.tracer.enabled:
            self.tracer.instant("degradation", stage=stage, step=step)
        logger.warning(
            "storage failure during %s (%s); degrading I/O mode: %s",
            stage, exc, step,
        )

    def _maybe_checkpoint(
        self,
        ctx: EngineContext,
        app: MiningApplication,
        cse: CSE,
        iteration: int,
        reduced: PatternMap,
        aggregated: bool,
    ) -> None:
        """Write the per-level checkpoint for one completed iteration.

        Checkpoints are an availability feature, not a correctness one: a
        failed write is logged and counted, and the run carries on (the
        previous checkpoint, if any, stays valid — saves are atomic).
        """
        if self._checkpoints is None or (iteration + 1) % self.checkpoint_every:
            return
        state = {
            "version": _RUN_STATE_VERSION,
            "app": app.name,
            "iteration": iteration,
            "aggregated": aggregated,
            "reduced": reduced,
            "app_state": app.checkpoint_state(ctx),
        }
        try:
            path = self._checkpoints.save(iteration, cse, pickle.dumps(state))
        except StorageError as exc:
            self._checkpoint_failures += 1
            if self.tracer.enabled:
                self.tracer.instant("checkpoint-failure", iteration=iteration)
            logger.warning(
                "checkpoint after iteration %d failed (run continues): %s",
                iteration, exc,
            )
            return
        self._checkpoints_written += 1
        if self.tracer.enabled:
            self.tracer.instant("checkpoint", iteration=iteration)
        logger.debug("checkpointed iteration %d at %s", iteration, path)
        if self.on_checkpoint is not None:
            self.on_checkpoint(iteration, path)

    def _restore(
        self, ctx: EngineContext, app: MiningApplication, roots: np.ndarray
    ) -> tuple[CSE, PatternMap, bool, int, int] | None:
        """Load the deepest valid checkpoint; None means start fresh."""
        if self._checkpoints is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        restored = self._checkpoints.latest()
        if restored is None:
            logger.info("no valid checkpoint found; starting from scratch")
            return None
        iteration, cse, payload = restored
        try:
            state = pickle.loads(payload)
        except Exception as exc:  # CRC passed but the blob is unusable
            raise StorageError(f"cannot decode checkpoint run state: {exc}") from exc
        if state.get("version") != _RUN_STATE_VERSION:
            raise StorageError(
                f"unsupported run-state version {state.get('version')!r}"
            )
        if state.get("app") != app.name:
            raise StorageError(
                f"checkpoint belongs to {state.get('app')!r}, not {app.name!r}"
            )
        if not np.array_equal(cse.levels[0].vert_array(), roots):
            raise StorageError(
                "checkpoint root level does not match the application's seeds "
                "(different graph or parameters?)"
            )
        if state.get("app_state") is not None:
            app.restore_state(ctx, state["app_state"])
        if self.tracer.enabled:
            self.tracer.instant(
                "checkpoint-restore", iteration=iteration, depth=cse.depth
            )
        logger.info(
            "resuming %s from checkpoint level %d (depth %d, %d embeddings)",
            app.name, iteration, cse.depth, cse.size(),
        )
        return cse, state["reduced"], bool(state["aggregated"]), iteration + 1, iteration

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        ctx: EngineContext,
        app: MiningApplication,
        cse: CSE,
        schedules: list[Schedule],
        schedule_phases: list[str],
    ) -> tuple[PatternMap, float, float]:
        """Plan mapper parts, run them through the executor, then reduce.

        Returns ``(reduced, simulated span, wall seconds)``.  Per-part
        PatternMaps are modelled faithfully: each part owns its own map,
        so accounted memory grows with the worker count and the final
        merge is serial — which is exactly why FSM scales sublinearly
        (Fig. 14).
        """
        wall_started = time.perf_counter()
        with self.tracer.span("aggregate", size=cse.size()):
            plan = self.planner.plan_aggregate(ctx, app, cse)
            emb_iter = iter(cse.iter_embeddings())

            def tasks():
                for start, end in plan.part_bounds:
                    embeddings = [emb for _, emb in islice(emb_iter, end - start)]
                    yield partial(aggregate_part, app, ctx, embeddings)

            with self._hot_phase():
                report = self.executor.run(
                    tasks(), workers=self.workers, tracer=self.tracer, phase="aggregate"
                )
            pmaps: list[PatternMap] = [pmap for pmap, _ in report.results]
            # Part states are absorbed serially in part-index order,
            # whatever order the executor completed the parts in.
            for _, part_state in report.results:
                if part_state is not None:
                    app.finish_part(ctx, part_state)

            self.meter.set("pattern_maps", sum(app.pmap_nbytes(m) for m in pmaps))
            if hasattr(self.hasher, "nbytes"):
                self.meter.set("hasher_cache", self.hasher.nbytes)
            schedule = report.schedule
            schedules.append(schedule)
            schedule_phases.append("aggregate")

            reduce_started = time.perf_counter()
            reduced = app.reduce(ctx, pmaps)
            reduce_seconds = time.perf_counter() - reduce_started
            self.meter.set("pattern_maps", app.pmap_nbytes(reduced))
        wall = time.perf_counter() - wall_started
        return reduced, schedule.span_seconds + reduce_seconds, wall

    def _io_totals(self) -> tuple[int, int]:
        store = self._policy.store
        if store is None:
            return 0, 0
        return store.io.bytes_read, store.io.bytes_written

    @property
    def io_stats(self):
        """The spill store's IOStats (None when nothing ever spilled)."""
        store = self._policy.store
        return None if store is None else store.io

    def close(self) -> None:
        """Delete spill files and reap engine-owned worker pools (safe to
        call twice)."""
        self._policy.close()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "KaleidoEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
