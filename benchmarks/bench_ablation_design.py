"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these quantify the contribution of each mechanism:

1. CSE vs an explicit tuple store (space per embedding).
2. EigenHash memoisation on/off (the production cache vs the paper's
   per-embedding hashing).
3. Sliding-window prefetch + async writer on/off for spilled levels.
4. Prediction-based vs contiguous even partitioning (part-cost variance).
"""

import tempfile

import numpy as np
import pytest

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.balance import balanced_parts, partition_quality, predict_vertex_costs
from repro.bench import PROFILE, bench_graph, format_table
from repro.core import CSE
from repro.core.explore import even_parts, expand_vertex_level

from conftest import run_once


@pytest.mark.benchmark(group="ablation")
def test_ablation_cse_vs_tuple_store(benchmark, emit):
    """CSE stores one int32 per embedding per level; a tuple store pays
    CPython object overhead per embedding."""

    def measure():
        graph = bench_graph("patent")
        cse = CSE(np.arange(graph.num_vertices))
        expand_vertex_level(graph, cse)
        expand_vertex_level(graph, cse)
        embeddings = [emb for _, emb in cse.iter_embeddings()]
        tuple_bytes = len(embeddings) * (56 + 8 * 3 + 8)
        return cse.nbytes_in_memory, tuple_bytes, len(embeddings)

    cse_bytes, tuple_bytes, count = run_once(benchmark, measure)
    factor = tuple_bytes / cse_bytes
    emit(
        format_table(
            ["store", "bytes", "bytes/embedding"],
            [
                ["CSE (all levels)", f"{cse_bytes:,}", f"{cse_bytes / count:.1f}"],
                ["tuple store (top level only)", f"{tuple_bytes:,}",
                 f"{tuple_bytes / count:.1f}"],
            ],
            title=f"Ablation — CSE vs tuple store over {count:,} 3-embeddings "
                  f"(profile: {PROFILE})",
        )
        + f"\nCSE advantage: {factor:.1f}x",
        name="ablation_cse_store",
    )
    assert factor > 3.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_hash_memoisation(benchmark, emit):
    """The normalised-structure cache vs the paper's per-embedding regime."""

    def measure():
        graph = bench_graph("mico")
        cached = KaleidoEngine(graph).run(MotifCounting(3))
        uncached = KaleidoEngine(graph).run(
            MotifCounting(3, hash_every_embedding=True)
        )
        assert dict(cached.value) == dict(uncached.value)
        return cached.wall_seconds, uncached.wall_seconds

    cached_s, uncached_s = run_once(benchmark, measure)
    emit(
        f"Ablation — pattern-hash memoisation (3-Motif, mico, {PROFILE})\n"
        f"  memoised:        {cached_s:.3f}s\n"
        f"  per-embedding:   {uncached_s:.3f}s\n"
        f"  speedup:         {uncached_s / cached_s:.1f}x",
        name="ablation_hash_memo",
    )
    assert uncached_s > cached_s


@pytest.mark.benchmark(group="ablation")
def test_ablation_prefetch(benchmark, emit):
    """Async writer + sliding-window prefetch vs fully synchronous I/O."""

    def measure():
        graph = bench_graph("citeseer")
        results = {}
        for fancy in (True, False):
            with tempfile.TemporaryDirectory(prefix="abl-") as tmp:
                with KaleidoEngine(
                    graph,
                    storage_mode="spill-last",
                    spill_dir=tmp,
                    synchronous_io=not fancy,
                    prefetch=fancy,
                ) as engine:
                    results[fancy] = engine.run(MotifCounting(4))
        assert dict(results[True].value) == dict(results[False].value)
        return results[True].wall_seconds, results[False].wall_seconds

    fancy_s, sync_s = run_once(benchmark, measure)
    emit(
        f"Ablation — I/O overlap (4-Motif, citeseer, spill-last, {PROFILE})\n"
        f"  async writer + prefetch window: {fancy_s:.3f}s\n"
        f"  synchronous I/O:                {sync_s:.3f}s\n"
        f"  overlap benefit:                {sync_s / fancy_s:.2f}x",
        name="ablation_prefetch",
    )
    # Overlap should never make things meaningfully slower.
    assert fancy_s < sync_s * 1.25 + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_partitioning(benchmark, emit):
    """Predicted-cost partitioning flattens part-cost variance."""

    def measure():
        graph = bench_graph("youtube")
        cse = CSE(np.arange(graph.num_vertices))
        expand_vertex_level(graph, cse)
        costs = predict_vertex_costs(graph, cse)
        even = partition_quality(even_parts(cse.size(), 32), costs)
        pred = partition_quality(balanced_parts(costs, 32), costs)
        return even, pred

    even, pred = run_once(benchmark, measure)
    emit(
        f"Ablation — partitioning under predicted costs (youtube, {PROFILE})\n"
        f"  even count split: imbalance {even.imbalance:.2f} "
        f"(max part {even.max_cost:.0f})\n"
        f"  predicted split:  imbalance {pred.imbalance:.2f} "
        f"(max part {pred.max_cost:.0f})",
        name="ablation_partitioning",
    )
    assert pred.imbalance <= even.imbalance
