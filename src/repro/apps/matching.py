"""Pattern matching: find the embeddings of one given pattern (Figure 1).

The paper's opening example: given a template pattern ``p``, enumerate the
embeddings of the input graph isomorphic to ``p`` ("pattern matching,
which is also a step of the frequent subgraph mining").

Expressed in the Kaleido API as a vertex-induced exploration whose
EmbeddingFilter prunes partial embeddings that can no longer complete to a
match (label multiset and degree-feasibility checks), with the final
Mapper keeping exactly the isomorphic ones.
"""

from __future__ import annotations

from collections import Counter

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.isomorphism import are_isomorphic
from ..core.pattern import Pattern

__all__ = ["PatternMatching", "MatchResult"]


class MatchResult:
    """Count (and optionally the list) of matching embeddings."""

    def __init__(self, pattern: Pattern, count: int,
                 matches: list[tuple[int, ...]] | None) -> None:
        self.pattern = pattern
        self.count = count
        self.matches = matches

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.count == other
        if isinstance(other, MatchResult):
            return self.count == other.count and self.pattern == other.pattern
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchResult(k={self.pattern.num_vertices}, count={self.count})"


class PatternMatching(MiningApplication):
    """Count/enumerate vertex-induced embeddings of a given pattern.

    Matching is *induced*: an embedding matches when its induced subgraph
    is isomorphic to the pattern (Figure 1's semantics, where embeddings
    carry all edges among their vertices).
    """

    induced = "vertex"

    def __init__(self, pattern: Pattern, materialize: bool = False) -> None:
        if pattern.num_vertices < 2:
            raise ValueError("pattern needs at least two vertices")
        if not pattern.is_connected():
            raise ValueError("only connected patterns occur as embeddings")
        self.pattern = pattern
        self.materialize = materialize
        self._label_budget = Counter(pattern.labels)
        self._max_degree = max(pattern.degree_sequence())

    @property
    def name(self) -> str:
        return f"Match(k={self.pattern.num_vertices})"

    def iterations(self) -> int:
        return self.pattern.num_vertices - 1

    def query_pattern(self) -> Pattern:
        return self.pattern

    def init(self, ctx: EngineContext):
        self._graph = ctx.graph
        self._matches: list[tuple[int, ...]] = []
        import numpy as np

        # Seed only vertices whose label occurs in the pattern.
        wanted = set(self._label_budget)
        roots = [
            v for v in range(ctx.graph.num_vertices)
            if int(ctx.graph.labels[v]) in wanted
        ]
        return np.asarray(roots, dtype=np.int32)

    def embedding_filter(self, embedding: tuple[int, ...], candidate: int) -> bool:
        """Feasibility pruning: the partial label multiset must stay within
        the pattern's, and no member may exceed the pattern's max degree
        *within* the embedding."""
        labels = self._graph.labels
        counts = Counter(int(labels[v]) for v in embedding)
        counts[int(labels[candidate])] += 1
        for label, need in counts.items():
            if need > self._label_budget.get(label, 0):
                return False
        # Internal-degree bound: candidate's edges into the embedding.
        adjacency = self._graph.adjacency_sets()
        internal = sum(1 for v in embedding if v in adjacency[candidate])
        return internal <= self._max_degree

    def start_part(self, ctx: EngineContext) -> list[tuple[int, ...]] | None:
        # Per-part match buffer, merged back in part-index order by
        # finish_part — concurrent parts must not append to the shared
        # list, or the materialised order becomes completion order.
        return [] if self.materialize else None

    def finish_part(
        self, ctx: EngineContext, part: list[tuple[int, ...]]
    ) -> None:
        self._matches.extend(part)

    def map_embedding(
        self,
        ctx: EngineContext,
        embedding: tuple[int, ...],
        pmap: PatternMap,
        part: list[tuple[int, ...]] | None = None,
    ) -> None:
        candidate = Pattern.from_vertex_embedding(ctx.graph, embedding)
        if are_isomorphic(candidate, self.pattern):
            pmap[0] = pmap.get(0, 0) + 1
            if self.materialize:
                # self._matches is only the receiver when part is None —
                # the single-threaded direct-call path.
                (self._matches if part is None else part).append(embedding)  # repro: ignore[R001]

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> MatchResult:
        return MatchResult(
            self.pattern,
            pmap.get(0, 0),
            self._matches if self.materialize else None,
        )
