"""Vectorized expansion kernels over the graph's CSR arrays.

The exploration hot loop — expand every embedding of the CSE's top level
by one vertex/edge under the Definition-2 canonical filter — used to run
as per-embedding Python loops over ``frozenset`` adjacency
(:func:`repro.core.explore.expand_vertex_part` and friends).  This module
reimplements that loop as *block* operations: a part's embeddings arrive
as one 2-D ``(rows, k)`` integer array (decoded straight from the CSE
``off``/``vert`` arrays by :meth:`repro.core.cse.CSE.decode_block`), all
candidates are generated with CSR gathers (``np.repeat`` +
cumulative-sum index arithmetic), and every clause of the canonical
filter becomes one boolean mask over the flat ``(row, candidate)`` pair
arrays:

* **min-vertex bound** — ``candidate > embedding[0]``;
* **membership** — the candidate is not already in the embedding;
* **first-neighbor** — the earliest embedding position adjacent to the
  candidate;
* **suffix order** — every embedding vertex after the first neighbor must
  not exceed the candidate, checked against a per-row suffix-maximum
  table.

The load-bearing trick is one sort of packed ``(row, candidate, source
column)`` keys per chunk: group heads dedup the candidate pairs, the key
order reproduces the scalar loops' ``sorted(candidate set)`` emission
order, and each head's low bits carry the smallest source column — which
*is* the canonical filter's first-neighbor (vertex kernel) or arrival
position (edge kernel).  No ``np.unique`` (whose hash-based
implementation in recent numpy is an order of magnitude slower than a
plain sort at these sizes).

Since the restriction compiler landed there are **two** filter paths:

* **masked** (``restrictions=None``) — generate every neighbor, then
  apply the canonical clauses as post-hoc boolean masks as described
  above.  This path examines exactly the candidates the scalar oracle
  examines (``candidates_examined`` parity) and remains the default at
  this API level.
* **fused** (``restrictions=`` a
  :class:`repro.core.restrictions.KernelRestrictions`) — the
  symmetry-breaking order becomes per-gather-column *lower bounds*
  applied during the CSR gather itself: one ``searchsorted`` into the
  packed sorted adjacency view (:meth:`repro.graph.Graph.adjacency_keys`
  / :meth:`repro.graph.EdgeIndex.incident_keys`) per chunk skips the
  filtered candidates instead of materialising and masking them, so
  ``candidates_examined`` counts only the survivors.  The bounds assume
  each gather column is the candidate's first adjacency; a cheap
  verification pass on the (far fewer) dedup heads rejects candidates
  whose true first adjacency was pruned away — provably exactly the
  candidates the canonical filter rejects, so emitted levels stay
  *bit-identical* to the scalar oracle (oracle-differential and
  property-tested).  The planner turns this path on by default
  (``Planner(use_restrictions=True)``; ``--no-restrictions`` is the
  escape hatch).

The scalar path in :mod:`repro.core.explore` keeps the unrestricted
post-hoc canonical filter: it is the parity oracle for both kernel paths
and the fallback whenever a Python ``embedding_filter`` override must
run per candidate or a CSE level is spilled (a non-block-decodable CSE
never reaches the kernels, so spilled levels always take the masked —
scalar — route regardless of the plan's restrictions).

The :class:`VertexKernelContext` / :class:`EdgeKernelContext` bundles are
plain picklable dataclasses so a :class:`repro.core.executor.ProcessExecutor`
can ship the graph arrays to each worker once (via
:func:`install_worker_context` in the pool initializer) instead of once
per task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph

__all__ = [
    "id_dtype",
    "DEFAULT_ID_DTYPE",
    "VertexKernelContext",
    "EdgeKernelContext",
    "vertex_kernel_context",
    "edge_kernel_context",
    "expand_vertex_block",
    "expand_edge_block",
    "install_worker_context",
    "current_worker_context",
]

#: Rows processed per internal chunk: bounds the transient ``(pairs, k)``
#: mask matrices no matter how large a part the planner cut.
BLOCK_ROWS = 16_384

_INT32_MAX = int(np.iinfo(np.int32).max)


def id_dtype(count: int, boundary: int = _INT32_MAX) -> np.dtype:
    """Narrowest dtype for ids in ``range(count)``.

    ``boundary`` is the largest id count that still fits the narrow
    dtype; tests lower it to exercise the widening path without building
    a 2^31-entry graph.
    """
    return np.dtype(np.int32) if count <= boundary else np.dtype(np.int64)


#: The id dtype of an empty id space — the canonical fallback wherever a
#: sink or level needs a dtype before any ids have been produced.  Using
#: this instead of a hard-coded ``np.int32`` keeps the selection logic in
#: exactly one place (and keeps rule R004 quiet).  Both kernel paths —
#: masked and restriction-fused — emit in ``out_dtype`` and do their
#: packed-key arithmetic in ``int64`` regardless, so the fused path's
#: ``searchsorted`` bounds widen exactly like the gather keys do.
DEFAULT_ID_DTYPE = id_dtype(0)


# ----------------------------------------------------------------------
# Kernel contexts: the read-only array bundles the kernels gather from
# ----------------------------------------------------------------------
@dataclass
class VertexKernelContext:
    """Everything :func:`expand_vertex_block` needs, picklable."""

    indptr: np.ndarray
    indices: np.ndarray
    num_vertices: int
    out_dtype: np.dtype
    #: Packed sorted adjacency view (``u * n + w``, globally ascending);
    #: the fused restricted path binary-searches its lower bounds into
    #: it.  ``None`` only for hand-built contexts that never take that
    #: path.
    adjacency_keys: np.ndarray | None = None

    kind = "vertex"


@dataclass
class EdgeKernelContext:
    """Everything :func:`expand_edge_block` needs, picklable."""

    edge_u: np.ndarray
    edge_v: np.ndarray
    #: Vertex → incident-edge CSR pair.
    inc_indptr: np.ndarray
    incident: np.ndarray
    num_vertices: int
    num_edges: int
    out_dtype: np.dtype
    #: Packed sorted incidence view (``w * m + edge_id``, globally
    #: ascending) — the edge analogue of ``adjacency_keys``.
    incident_keys: np.ndarray | None = None

    kind = "edge"


def vertex_kernel_context(
    graph: Graph, out_dtype: np.dtype | None = None
) -> VertexKernelContext:
    """Build the vertex kernel's array bundle from a graph.

    The packed views come from the graph's caches, so every context
    built from the same graph shares the same array objects — which is
    what lets :class:`~repro.core.executor.ProcessExecutor` reuse its
    pool across levels (context matching is by array identity).
    """
    return VertexKernelContext(
        indptr=graph.indptr,
        indices=graph.indices,
        num_vertices=graph.num_vertices,
        out_dtype=out_dtype if out_dtype is not None else graph.id_dtype,
        adjacency_keys=graph.adjacency_keys(),
    )


def edge_kernel_context(
    index: EdgeIndex, out_dtype: np.dtype | None = None
) -> EdgeKernelContext:
    """Build the edge kernel's array bundle from an edge index."""
    inc_indptr, incident = index.incident_arrays()
    return EdgeKernelContext(
        edge_u=index.edge_u,
        edge_v=index.edge_v,
        inc_indptr=inc_indptr,
        incident=incident,
        num_vertices=index.graph.num_vertices,
        num_edges=index.num_edges,
        out_dtype=out_dtype if out_dtype is not None else index.id_dtype,
        incident_keys=index.incident_keys(),
    )


# ----------------------------------------------------------------------
# Shared gather helpers
# ----------------------------------------------------------------------
def _csr_gather(
    indptr: np.ndarray, data: np.ndarray, keys: np.ndarray, owners: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``data[indptr[key]:indptr[key+1]]`` for every key.

    Returns ``(values, owner_per_value)`` where ``owners[i]`` tags every
    value gathered for ``keys[i]``.  This is the ``np.repeat`` +
    cumulative-offset trick that turns per-vertex adjacency walks into
    one flat gather.
    """
    return _ranged_gather(indptr[keys], indptr[keys + 1], data, owners)


def _ranged_gather(
    starts: np.ndarray, ends: np.ndarray, data: np.ndarray, owners: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``data[starts[i]:ends[i]]`` for every slice.

    The generalisation of :func:`_csr_gather` the fused restricted path
    needs: its lower bounds move each slice's *start* forward past the
    candidates the symmetry-breaking order rules out, so they are never
    gathered at all.
    """
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=data.dtype),
            np.zeros(0, dtype=owners.dtype),
        )
    cum = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=cum[1:])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - cum[:-1], lengths)
    return data[flat], np.repeat(owners, lengths)


def _suffix_max(block: np.ndarray) -> np.ndarray:
    """``out[r, j] = max(block[r, j:])`` with an extra all ``-1`` column.

    ``out[r, f + 1]`` is then the largest embedding entry *after*
    position ``f`` — the suffix-order clause compares it to the
    candidate in one vectorized step.
    """
    rows, k = block.shape
    out = np.full((rows, k + 1), -1, dtype=np.int64)
    for j in range(k - 1, -1, -1):
        np.maximum(block[:, j], out[:, j + 1], out=out[:, j])
    return out


def _mask_members(
    keep: np.ndarray, pair_ids: np.ndarray, block: np.ndarray, modulus: int
) -> None:
    """Clear ``keep`` where the candidate is already in its embedding.

    ``pair_ids`` is the *sorted* packed ``row * modulus + candidate``
    array; the embedding ids re-packed the same way are a much smaller
    set, so searching them into the candidates is ``rows * k`` binary
    searches instead of a ``(pairs, k)`` comparison matrix.
    """
    rows_total, k = block.shape
    emb_keys = np.arange(rows_total, dtype=np.int64)[:, None] * modulus + block
    pos = np.searchsorted(pair_ids, emb_keys.reshape(-1))
    np.minimum(pos, pair_ids.shape[0] - 1, out=pos)
    hits = pos[pair_ids[pos] == emb_keys.reshape(-1)]
    keep[hits] = False


# ----------------------------------------------------------------------
# Vertex-induced kernel
# ----------------------------------------------------------------------
def expand_vertex_block(
    ctx: VertexKernelContext, block: np.ndarray, restrictions=None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Expand a block of same-length embeddings by one vertex.

    ``block`` is ``(rows, k)``: row ``r`` is the vertex tuple of one
    embedding.  Returns ``(vert, counts, candidates_examined)``; ``vert``
    holds the emitted last vertices in embedding order (candidates
    ascending within each row) and ``counts[r]`` how many row ``r``
    emitted — both byte-identical to
    :func:`repro.core.explore.expand_vertex_part`.  With
    ``restrictions=None`` (the masked path) ``candidates_examined`` also
    matches the scalar oracle exactly; with a
    :class:`~repro.core.restrictions.KernelRestrictions` the fused
    bounds skip filtered candidates during the gather, so it counts only
    the surviving deduped pairs.
    """
    block = np.ascontiguousarray(block)
    if block.ndim != 2:
        raise ValueError(f"block must be 2-D (rows, k), got shape {block.shape}")
    _check_restrictions(ctx, block, restrictions)
    rows_total = block.shape[0]
    counts = np.zeros(rows_total, dtype=np.int64)
    pieces: list[np.ndarray] = []
    examined = 0
    for start in range(0, rows_total, BLOCK_ROWS):
        chunk = block[start : start + BLOCK_ROWS]
        if restrictions is None:
            vert, chunk_counts, chunk_examined = _expand_vertex_chunk(ctx, chunk)
        else:
            vert, chunk_counts, chunk_examined = _expand_vertex_chunk_fused(
                ctx, chunk, restrictions
            )
        counts[start : start + chunk.shape[0]] = chunk_counts
        pieces.append(vert)
        examined += chunk_examined
    if pieces:
        vert = np.concatenate(pieces)
    else:
        vert = np.zeros(0, dtype=ctx.out_dtype)
    return vert.astype(ctx.out_dtype, copy=False), counts, examined


def _check_restrictions(ctx, block: np.ndarray, restrictions) -> None:
    """Reject restriction bundles laid out for a different kernel/level."""
    if restrictions is None:
        return
    if restrictions.kind != ctx.kind:
        raise ValueError(
            f"{restrictions.kind!r} restrictions passed to the {ctx.kind} kernel"
        )
    k = block.shape[1]
    if k and restrictions.level != k:
        raise ValueError(
            f"restrictions compiled for level {restrictions.level}, "
            f"block has depth {k}"
        )


def _expand_vertex_chunk(
    ctx: VertexKernelContext, block: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    rows_total, k = block.shape
    empty = np.zeros(0, dtype=ctx.out_dtype)
    if rows_total == 0 or k == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0
    n = ctx.num_vertices
    block64 = block.astype(np.int64, copy=False)

    # Candidate generation: gather the neighbor list of every embedding
    # vertex, tagging each gathered neighbor with the flat (row, column)
    # position it came from.
    flat_verts = block64.reshape(-1)
    positions = np.arange(rows_total * k, dtype=np.int64)
    neigh, owner = _csr_gather(ctx.indptr, ctx.indices, flat_verts, positions)
    if neigh.shape[0] == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0

    # One sort does three jobs at once.  Keys group by (row, candidate)
    # with the source column as the low bits, so sorting (a) dedups the
    # per-row candidate set, (b) orders candidates ascending within each
    # row — the scalar loop's `sorted(set)` emission order — and (c)
    # leaves each group's *head* carrying the smallest source column,
    # which is exactly the canonical filter's first-neighbor index.
    row = owner // k
    col = owner - row * k
    keys = (row * n + neigh) * k + col
    keys.sort()
    pair_ids = keys // k
    head = np.empty(keys.shape, dtype=bool)
    head[0] = True
    np.not_equal(pair_ids[1:], pair_ids[:-1], out=head[1:])
    first_keys = keys[head]
    pair_ids = pair_ids[head]
    rows = pair_ids // n
    cands = pair_ids - rows * n
    first_nb = first_keys - pair_ids * k
    examined = int(rows.shape[0])

    # Min-vertex bound.  (The scalar filter's no-neighbor rejection can
    # never fire here: every candidate came off some embedding vertex's
    # neighbor list.)
    keep = cands > block64[rows, 0]
    # Membership clause, inverted: rather than comparing every candidate
    # against all k embedding columns, binary-search the (far fewer)
    # embedding keys into the sorted candidate pair ids and knock out the
    # hits.
    _mask_members(keep, pair_ids, block64, n)
    # Suffix-order clause: max(embedding[first_nb + 1:]) <= candidate.
    sfx = _suffix_max(block64)
    tail_max = sfx[rows, first_nb + 1]
    np.logical_and(keep, tail_max <= cands, out=keep)

    counts = np.bincount(rows[keep], minlength=rows_total)
    return cands[keep].astype(ctx.out_dtype), counts, examined


def _expand_vertex_chunk_fused(
    ctx: VertexKernelContext, block: np.ndarray, restrictions
) -> tuple[np.ndarray, np.ndarray, int]:
    """Restriction-fused vertex expansion: bounds applied *in* the gather.

    Gather column ``j`` (embedding position ``j``'s neighbor slice) only
    admits candidates ``>= lb[r, j] = max(block[r, 0] + 1,
    suffix_max[r, j + 1])`` — the canonical order's min-id and
    suffix-order clauses assuming ``j`` is the candidate's first
    neighbor.  One ``searchsorted`` into the packed ascending
    ``adjacency_keys`` view moves each slice start past the ruled-out
    candidates.  Because ``lb`` is non-increasing in ``j``, a deduped
    head's column ``g`` is the candidate's earliest *surviving*
    occurrence; if its true first neighbor ``f < g`` was pruned, the
    pruning itself proves a suffix-order violation at ``f``, so such
    heads are exactly the canonical filter's rejects — the verification
    pass below knocks them out by binary-searching ``(block[r, f],
    cand)`` edges for ``f`` before each head's ``g``.
    """
    rows_total, k = block.shape
    empty = np.zeros(0, dtype=ctx.out_dtype)
    if rows_total == 0 or k == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0
    adjacency_keys = ctx.adjacency_keys
    if adjacency_keys is None:
        raise ValueError(
            "restricted vertex kernel needs a context with adjacency_keys "
            "(build it with vertex_kernel_context)"
        )
    n = ctx.num_vertices
    block64 = block.astype(np.int64, copy=False)
    sfx = _suffix_max(block64)

    # Per-(row, column) inclusive lower bounds, flattened like the block.
    strict = block64[:, restrictions.strict_lower_col, None] + 1
    cols = np.asarray(restrictions.suffix_from, dtype=np.int64)
    lb = np.maximum(strict, sfx[:, cols])
    flat_verts = block64.reshape(-1)
    slice_ends = ctx.indptr[flat_verts + 1]
    starts = np.searchsorted(adjacency_keys, flat_verts * n + lb.reshape(-1))
    np.minimum(starts, slice_ends, out=starts)

    positions = np.arange(rows_total * k, dtype=np.int64)
    neigh, owner = _ranged_gather(starts, slice_ends, ctx.indices, positions)
    if neigh.shape[0] == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0

    # Same one-sort dedup as the masked path: each group head carries the
    # earliest surviving source column.
    row = owner // k
    col = owner - row * k
    keys = (row * n + neigh) * k + col
    keys.sort()
    pair_ids = keys // k
    head = np.empty(keys.shape, dtype=bool)
    head[0] = True
    np.not_equal(pair_ids[1:], pair_ids[:-1], out=head[1:])
    first_keys = keys[head]
    pair_ids = pair_ids[head]
    rows = pair_ids // n
    cands = pair_ids - rows * n
    first_nb = first_keys - pair_ids * k
    examined = int(rows.shape[0])

    keep = np.ones(examined, dtype=bool)
    _mask_members(keep, pair_ids, block64, n)
    # First-neighbor verification: reject heads adjacent to an earlier
    # (pruned) column — at most k - 1 rounds of binary searches over the
    # heads, not the raw gather.
    for f in range(k - 1):
        sel = np.nonzero(keep & (first_nb > f))[0]
        if sel.shape[0] == 0:
            continue
        probe = block64[rows[sel], f] * n + cands[sel]
        pos = np.searchsorted(adjacency_keys, probe)
        np.minimum(pos, adjacency_keys.shape[0] - 1, out=pos)
        keep[sel[adjacency_keys[pos] == probe]] = False

    counts = np.bincount(rows[keep], minlength=rows_total)
    return cands[keep].astype(ctx.out_dtype), counts, examined


# ----------------------------------------------------------------------
# Edge-induced kernel
# ----------------------------------------------------------------------
def expand_edge_block(
    ctx: EdgeKernelContext, block: np.ndarray, restrictions=None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Edge-induced analogue of :func:`expand_vertex_block`.

    ``block`` rows hold edge ids; candidates are the edges incident to
    any endpoint of the embedding, filtered by the edge-canonicality rule
    (min-edge-id bound, membership, first-reachable arrival position,
    suffix order).  Emitted ids and counts match
    :func:`repro.core.explore.expand_edge_part` exactly on both paths;
    as in the vertex kernel, ``candidates_examined`` only matches the
    scalar oracle on the masked path (``restrictions=None``).
    """
    block = np.ascontiguousarray(block)
    if block.ndim != 2:
        raise ValueError(f"block must be 2-D (rows, k), got shape {block.shape}")
    _check_restrictions(ctx, block, restrictions)
    rows_total = block.shape[0]
    counts = np.zeros(rows_total, dtype=np.int64)
    pieces: list[np.ndarray] = []
    examined = 0
    for start in range(0, rows_total, BLOCK_ROWS):
        chunk = block[start : start + BLOCK_ROWS]
        if restrictions is None:
            vert, chunk_counts, chunk_examined = _expand_edge_chunk(ctx, chunk)
        else:
            vert, chunk_counts, chunk_examined = _expand_edge_chunk_fused(
                ctx, chunk, restrictions
            )
        counts[start : start + chunk.shape[0]] = chunk_counts
        pieces.append(vert)
        examined += chunk_examined
    if pieces:
        vert = np.concatenate(pieces)
    else:
        vert = np.zeros(0, dtype=ctx.out_dtype)
    return vert.astype(ctx.out_dtype, copy=False), counts, examined


def _expand_edge_chunk(
    ctx: EdgeKernelContext, block: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    rows_total, k = block.shape
    empty = np.zeros(0, dtype=ctx.out_dtype)
    if rows_total == 0 or k == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0
    block64 = block.astype(np.int64, copy=False)
    m = ctx.num_edges

    # Endpoint matrix: columns (2j, 2j + 1) are the endpoints of the j-th
    # embedding edge, so column // 2 is the arrival position the
    # edge-canonicality rule ranks by.
    ends = np.empty((rows_total, 2 * k), dtype=np.int64)
    ends[:, 0::2] = ctx.edge_u[block64]
    ends[:, 1::2] = ctx.edge_v[block64]

    # Candidate generation: the incident-edge list of every endpoint
    # occurrence, tagged with the flat (row, column) position it came
    # from.
    width = 2 * k
    positions = np.arange(rows_total * width, dtype=np.int64)
    inc, owner = _csr_gather(ctx.inc_indptr, ctx.incident, ends.reshape(-1), positions)
    if inc.shape[0] == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0

    # Same one-sort trick as the vertex kernel: keys group by (row,
    # candidate edge) with the source column as the low bits, so each
    # group's head carries the earliest endpoint occurrence — and since
    # column // 2 is monotone in the column, the head's position is the
    # candidate's minimum arrival `first`.
    row = owner // width
    col = owner - row * width
    keys = (row * m + inc) * width + col
    keys.sort()
    pair_ids = keys // width
    head = np.empty(keys.shape, dtype=bool)
    head[0] = True
    np.not_equal(pair_ids[1:], pair_ids[:-1], out=head[1:])
    first_keys = keys[head]
    pair_ids = pair_ids[head]
    rows = pair_ids // m
    cands = pair_ids - rows * m
    first = (first_keys - pair_ids * width) // 2
    examined = int(rows.shape[0])

    # Min-edge-id bound and membership clauses.  (Every candidate is
    # incident to some embedding endpoint, so the scalar filter's
    # unreachable-candidate rejection can never fire here.)
    keep = cands > block64[rows, 0]
    _mask_members(keep, pair_ids, block64, m)
    # Suffix-order clause over edge ids.
    sfx = _suffix_max(block64)
    tail_max = sfx[rows, first + 1]
    np.logical_and(keep, tail_max <= cands, out=keep)

    counts = np.bincount(rows[keep], minlength=rows_total)
    return cands[keep].astype(ctx.out_dtype), counts, examined


def _expand_edge_chunk_fused(
    ctx: EdgeKernelContext, block: np.ndarray, restrictions
) -> tuple[np.ndarray, np.ndarray, int]:
    """Restriction-fused edge expansion.

    Endpoint columns ``(2a, 2a + 1)`` belong to embedding edge ``a``, so
    both share the bound ``lb = max(block[r, 0] + 1, suffix_max[r,
    a + 1])`` — the edge-canonicality clauses assuming arrival ``a`` is
    the candidate's first.  ``searchsorted`` into the packed ascending
    ``incident_keys`` view prunes each incidence slice in place.  Since
    the two columns of an arrival carry identical bounds, a pruned
    earlier arrival implies both its columns were pruned, and the same
    suffix-violation argument as the vertex kernel applies; the
    verification pass compares each head's candidate endpoints against
    the endpoint columns before its surviving arrival (direct equality,
    no searches needed — endpoints are right there in ``ends``).
    """
    rows_total, k = block.shape
    empty = np.zeros(0, dtype=ctx.out_dtype)
    if rows_total == 0 or k == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0
    incident_keys = ctx.incident_keys
    if incident_keys is None:
        raise ValueError(
            "restricted edge kernel needs a context with incident_keys "
            "(build it with edge_kernel_context)"
        )
    m = ctx.num_edges
    block64 = block.astype(np.int64, copy=False)
    sfx = _suffix_max(block64)

    ends = np.empty((rows_total, 2 * k), dtype=np.int64)
    ends[:, 0::2] = ctx.edge_u[block64]
    ends[:, 1::2] = ctx.edge_v[block64]

    strict = block64[:, restrictions.strict_lower_col, None] + 1
    cols = np.asarray(restrictions.suffix_from, dtype=np.int64)
    lb = np.maximum(strict, sfx[:, cols])
    flat_ends = ends.reshape(-1)
    slice_ends = ctx.inc_indptr[flat_ends + 1]
    starts = np.searchsorted(incident_keys, flat_ends * m + lb.reshape(-1))
    np.minimum(starts, slice_ends, out=starts)

    width = 2 * k
    positions = np.arange(rows_total * width, dtype=np.int64)
    inc, owner = _ranged_gather(starts, slice_ends, ctx.incident, positions)
    if inc.shape[0] == 0:
        return empty, np.zeros(rows_total, dtype=np.int64), 0

    row = owner // width
    col = owner - row * width
    keys = (row * m + inc) * width + col
    keys.sort()
    pair_ids = keys // width
    head = np.empty(keys.shape, dtype=bool)
    head[0] = True
    np.not_equal(pair_ids[1:], pair_ids[:-1], out=head[1:])
    first_keys = keys[head]
    pair_ids = pair_ids[head]
    rows = pair_ids // m
    cands = pair_ids - rows * m
    first = (first_keys - pair_ids * width) // 2
    examined = int(rows.shape[0])

    keep = np.ones(examined, dtype=bool)
    _mask_members(keep, pair_ids, block64, m)
    # First-arrival verification: reject heads incident to an endpoint of
    # an earlier (pruned) arrival.
    cand_u = ctx.edge_u[cands].astype(np.int64, copy=False)
    cand_v = ctx.edge_v[cands].astype(np.int64, copy=False)
    for f in range(width - 2):
        sel = np.nonzero(keep & (first > f // 2))[0]
        if sel.shape[0] == 0:
            continue
        endpoint = ends[rows[sel], f]
        hit = (cand_u[sel] == endpoint) | (cand_v[sel] == endpoint)
        keep[sel[hit]] = False

    counts = np.bincount(rows[keep], minlength=rows_total)
    return cands[keep].astype(ctx.out_dtype), counts, examined


# ----------------------------------------------------------------------
# Per-process shared context (ProcessExecutor worker side)
# ----------------------------------------------------------------------
_WORKER_CONTEXT: "VertexKernelContext | EdgeKernelContext | None" = None

#: Keeps the worker's shared-memory mapping alive for as long as the
#: installed context's array views point into it.
_WORKER_SEGMENT = None


def install_worker_context(ctx) -> None:
    """Pool-initializer hook: stash the kernel context in this process.

    :class:`~repro.core.executor.ProcessExecutor` passes either the
    context itself or — on the zero-copy path — a
    :class:`repro.core.shm.SharedContextHandle` naming a shared-memory
    segment; in that case the worker attaches by name and rebuilds the
    context as read-only views, so no graph arrays cross the pipe.
    Block tasks shipped to the worker then look the context up here
    instead of carrying the arrays in every pickle.
    """
    global _WORKER_CONTEXT, _WORKER_SEGMENT
    from . import shm  # lazy: shm imports this module at its top level

    if isinstance(ctx, shm.SharedContextHandle):
        ctx, _WORKER_SEGMENT = shm.attach_context(ctx)
    _WORKER_CONTEXT = ctx


def current_worker_context():
    """The context installed by :func:`install_worker_context`."""
    if _WORKER_CONTEXT is None:
        raise RuntimeError(
            "no kernel context installed in this process; block tasks must "
            "run under a ProcessExecutor pool initializer or carry a local "
            "context"
        )
    return _WORKER_CONTEXT
