"""Fold the pre-existing ad-hoc instrumentation into a MetricsRegistry.

The storage and core layers grew their own measurement structures before
the observability layer existed — :class:`~repro.storage.meter.IOStats`,
:class:`~repro.storage.meter.MemoryMeter`, the
:class:`~repro.core.eigenhash.PatternHasher` hit/miss pair.  Rather than
rewrite them (every benchmark reads them directly), these helpers
project their state into the registry's namespace, so exporters and the
CLI see one interface.  The engine calls :func:`absorb_engine` once per
run, after the run finishes; live quantities (queue depth) are
instrumented at the source instead.

Metric names produced here are part of the public surface — the table
in docs/api.md lists them all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.engine import KaleidoEngine
    from ..storage.meter import IOStats, MemoryMeter

__all__ = [
    "METRIC_REGISTRY",
    "absorb_io_stats",
    "absorb_memory_meter",
    "absorb_hasher",
    "absorb_engine",
]

#: Every metric name the project may emit, as dotted patterns (``*``
#: matches one segment: per-component memory gauges, per-tenant views).
#: This is the schema dashboards are built against; analysis rule R008
#: checks each ``.counter/.gauge/.histogram`` emission in the code
#: against this table, so adding a metric means adding a row here (and
#: to the docs/api.md table) — a typo'd name fails the lint instead of
#: silently never reaching a dashboard.
METRIC_REGISTRY: tuple[str, ...] = (
    # io — spill/checkpoint byte counters and latency histograms
    "io.bytes_read",
    "io.bytes_written",
    "io.deletes",
    "io.failed_deletes",
    "io.retries",
    "io.read_seconds",
    "io.write_seconds",
    # queue — background writer instrumentation (live, at the source)
    "queue.depth",
    "queue.parts_written",
    # mem — MemoryMeter projections (total plus per-component)
    "mem.bytes",
    "mem.*.bytes",
    # hasher — PatternHasher cache statistics
    "hasher.hits",
    "hasher.misses",
    "hasher.evictions",
    "hasher.cache_entries",
    # storage — spill/demotion policy outcomes
    "storage.spilled_levels",
    "storage.demoted_levels",
    "storage.degradations",
    "storage.io_plan.part_entries",
    "storage.io_plan.prefetch_depth",
    # checkpoint — recovery bookkeeping
    "checkpoint.written",
    "checkpoint.failures",
    # service — query-tier totals
    "service.requests",
    "service.completed",
    "service.failed",
    "service.latency_seconds",
    "service.route.green",
    "service.route.yellow",
    "service.route.red",
    "service.route.degraded",
    "service.route.rejected",
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.evictions",
    "service.cache.entries",
    "service.sessions.created",
    "service.sessions.reused",
    "service.sessions.live",
    # tenant.<name>.* — per-tenant MetricsView projections
    "tenant.*.admitted",
    "tenant.*.rejected",
    "tenant.*.inflight",
    "tenant.*.completed",
    "tenant.*.failed",
    "tenant.*.route.*",
    "tenant.*.latency_seconds",
)


def absorb_io_stats(
    registry: MetricsRegistry, io: "IOStats", prefix: str = "io"
) -> None:
    """Project an IOStats into ``io.*`` counters and latency histograms."""
    registry.counter(f"{prefix}.bytes_read").inc(io.bytes_read)
    registry.counter(f"{prefix}.bytes_written").inc(io.bytes_written)
    registry.counter(f"{prefix}.deletes").inc(io.deletes)
    registry.counter(f"{prefix}.failed_deletes").inc(io.failed_deletes)
    registry.counter(f"{prefix}.retries").inc(io.retries)
    reads = registry.histogram(f"{prefix}.read_seconds")
    writes = registry.histogram(f"{prefix}.write_seconds")
    for event in io.events:
        (reads if event.kind == "read" else writes).observe(event.seconds)


def absorb_memory_meter(
    registry: MetricsRegistry, meter: "MemoryMeter", prefix: str = "mem"
) -> None:
    """Project a MemoryMeter into ``mem.*`` gauges (current and peak)."""
    total = registry.gauge(f"{prefix}.bytes")
    total.set(meter.peak_bytes)  # record the peak into the gauge's peak
    total.set(meter.current_bytes)
    for name, nbytes in meter.snapshot().items():
        registry.gauge(f"{prefix}.{name}.bytes").set(nbytes)


def absorb_hasher(
    registry: MetricsRegistry, hasher: object, prefix: str = "hasher"
) -> None:
    """Project a PatternHasher's cache statistics into ``hasher.*``."""
    hits = getattr(hasher, "hits", None)
    misses = getattr(hasher, "misses", None)
    if hits is None or misses is None:  # bliss-like baselines keep no stats
        return
    registry.counter(f"{prefix}.hits").inc(int(hits))
    registry.counter(f"{prefix}.misses").inc(int(misses))
    evictions = getattr(hasher, "evictions", None)
    if evictions is not None:
        registry.counter(f"{prefix}.evictions").inc(int(evictions))
    if hasattr(hasher, "__len__"):
        registry.gauge(f"{prefix}.cache_entries").set(len(hasher))  # type: ignore[arg-type]


def absorb_engine(registry: MetricsRegistry, engine: "KaleidoEngine") -> None:
    """Fold one engine's per-run measurement state into the registry.

    Idempotence is *not* promised: counters accumulate, so calling this
    after every run on a shared registry sums across runs (which is the
    useful reading for repeated-run benchmarks).
    """
    absorb_memory_meter(registry, engine.meter)
    absorb_hasher(registry, engine.hasher)
    if engine.io_stats is not None:
        absorb_io_stats(registry, engine.io_stats)
    policy = engine._policy
    registry.counter("storage.spilled_levels").inc(policy.spilled_levels)
    registry.counter("storage.demoted_levels").inc(policy.demoted_levels)
    registry.counter("storage.degradations").inc(len(policy.degradations))
    io_plan = getattr(policy, "last_io_plan", None)
    if io_plan is not None:
        registry.gauge("storage.io_plan.part_entries").set(io_plan.part_entries)
        registry.gauge("storage.io_plan.prefetch_depth").set(io_plan.prefetch_depth)
    registry.counter("checkpoint.written").inc(engine._checkpoints_written)
    registry.counter("checkpoint.failures").inc(engine._checkpoint_failures)
