"""MetricsView prefix scoping and Tracer.track_span request tracks."""

import pytest

from repro.obs import MetricsRegistry, MetricsView, NULL_TRACER, Tracer


def test_view_prefixes_every_instrument():
    registry = MetricsRegistry()
    view = registry.view("tenant.alice")
    view.counter("queries").inc()
    view.gauge("inflight").set(2)
    view.histogram("latency").observe(0.5)
    snap = registry.snapshot()
    assert snap["tenant.alice.queries"]["value"] == 1
    assert snap["tenant.alice.inflight"]["value"] == 2
    assert snap["tenant.alice.latency"]["count"] == 1


def test_view_shares_instruments_with_registry():
    registry = MetricsRegistry()
    view = registry.view("svc")
    assert view.counter("n") is registry.counter("svc.n")


def test_views_nest():
    registry = MetricsRegistry()
    nested = registry.view("tenant").view("bob")
    nested.counter("queries").inc()
    assert registry.snapshot()["tenant.bob.queries"]["value"] == 1


def test_view_names_and_snapshot_are_scoped():
    registry = MetricsRegistry()
    registry.counter("other.thing").inc()
    view = registry.view("tenant.carol")
    view.counter("queries").inc()
    assert view.names() == ["tenant.carol.queries"]
    assert view.snapshot() == {
        "queries": {"type": "counter", "value": 1}
    }


def test_empty_prefix_rejected():
    with pytest.raises(ValueError):
        MetricsRegistry().view("")


def test_view_type_is_exported():
    registry = MetricsRegistry()
    assert isinstance(registry.view("x"), MetricsView)


class FakeClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self):
        self.time += 1.0
        return self.time


def test_track_span_records_complete_on_explicit_track():
    tracer = Tracer(clock=FakeClock())
    with tracer.track_span("query", "request-1", tenant="alice"):
        pass
    (event,) = [e for e in tracer.events if e.kind == "complete"]
    assert event.name == "query"
    assert event.track == "request-1"
    assert event.args["tenant"] == "alice"
    assert event.dur is not None and event.dur > 0


def test_track_span_annotate_adds_args():
    tracer = Tracer(clock=FakeClock())
    with tracer.track_span("query", "request-2") as span:
        span.annotate(route="GREEN", cache=True)
    (event,) = [e for e in tracer.events if e.kind == "complete"]
    assert event.args == {"route": "GREEN", "cache": True}


def test_track_span_concurrent_tracks_do_not_interleave():
    tracer = Tracer(clock=FakeClock())
    with tracer.track_span("query", "request-1"):
        with tracer.track_span("query", "request-2"):
            pass
    events = [e for e in tracer.events if e.kind == "complete"]
    assert {e.track for e in events} == {"request-1", "request-2"}


def test_null_tracer_track_span_is_noop():
    with NULL_TRACER.track_span("query", "request-1") as span:
        span.annotate(anything=1)
