#!/usr/bin/env python
"""Expansion-kernel benchmark: scalar vs vectorized, threads vs processes.

Times the exploration hot path both ways on the synthetic CiteSeer/MiCo
stand-ins:

* **kernel micro-bench** — expand one full CSE level per dataset through
  the scalar per-embedding loop (tuple decode + ``expand_vertex_part``),
  through the vectorized *masked* block kernel (``decode_block`` +
  ``expand_vertex_block``, post-hoc canonical mask), and through the
  *restricted* kernel (fused ``searchsorted`` lower bounds from
  ``canonical_level_restrictions``), plus the edge-induced analogues,
  and report the speedups.  The outputs are asserted bit-identical
  first — a fast wrong kernel must fail the benchmark, not win it.  The
  restricted kernel legitimately examines fewer candidates, so only its
  emitted ``(vert, counts)`` are compared against the scalar oracle.
* **executor wall-clock** — one 3-motif engine run under the real
  thread-pool executor and the real spawn-based process-pool executor,
  reporting wall seconds for each.
* **hasher hit rate** — the EigenHash cache hit rate of an FSM run (the
  per-embedding hashing workload) must stay high — the raw-structure
  front cache exists exactly for this — and is recorded in the output.

Writes ``BENCH_kernels.json`` and exits nonzero if the vectorized kernel
is slower than the scalar loop on the smoke workload, if the restricted
edge kernel is slower than the masked one (the CI guards), if
kernel/scalar outputs differ, or if the hasher hit rate collapses.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py [--quick] [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting  # noqa: E402
from repro.core import kernels  # noqa: E402
from repro.core.cse import CSE  # noqa: E402
from repro.core.explore import (  # noqa: E402
    expand_edge_level,
    expand_edge_part,
    expand_vertex_level,
    expand_vertex_part,
)
from repro.core.restrictions import canonical_level_restrictions  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.graph.edge_index import EdgeIndex  # noqa: E402


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_vertex_kernel(graph, depth: int, repeats: int) -> dict:
    """Scalar vs vectorized expansion of one vertex-induced level."""
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    size = cse.size()
    adjacency = graph.adjacency_sets()  # pre-warmed for the scalar path
    ctx = kernels.vertex_kernel_context(graph)

    def scalar():
        embeddings = [emb for _, emb in cse.iter_embeddings()]
        return expand_vertex_part(graph, adjacency, embeddings, (0, size), 0)

    restrictions = canonical_level_restrictions("vertex", cse.depth)

    def vectorized():
        block = cse.decode_block(0, size)
        return kernels.expand_vertex_block(ctx, block)

    def restricted():
        block = cse.decode_block(0, size)
        return kernels.expand_vertex_block(ctx, block, restrictions)

    scalar_s, ref = _best_of(scalar, repeats)
    vector_s, out = _best_of(vectorized, repeats)
    restricted_s, rout = _best_of(restricted, repeats)
    vert, counts, examined = out
    if not (
        np.array_equal(vert, ref.vert)
        and np.array_equal(counts, ref.counts)
        and examined == ref.candidates_examined
    ):
        raise RuntimeError(f"vertex kernel output differs from scalar on {graph.name}")
    if not (
        np.array_equal(rout[0], ref.vert) and np.array_equal(rout[1], ref.counts)
    ):
        raise RuntimeError(
            f"restricted vertex kernel diverges from the oracle on {graph.name}"
        )
    return {
        "embeddings": size,
        "emitted": int(ref.emitted),
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "restricted_seconds": restricted_s,
        "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
        "restricted_speedup": (
            scalar_s / restricted_s if restricted_s > 0 else float("inf")
        ),
        "restricted_vs_masked": (
            vector_s / restricted_s if restricted_s > 0 else float("inf")
        ),
        "examined_masked": int(examined),
        "examined_restricted": int(rout[2]),
    }


def bench_edge_kernel(graph, repeats: int) -> dict:
    """Scalar vs vectorized expansion of one edge-induced level."""
    index = EdgeIndex(graph)
    cse = CSE(np.arange(index.num_edges, dtype=np.int32))
    expand_edge_level(graph, index, cse)
    size = cse.size()
    eu, ev = index.endpoint_lists()
    incident = index.incident_lists()
    ctx = kernels.edge_kernel_context(index)

    def scalar():
        embeddings = [emb for _, emb in cse.iter_embeddings()]
        return expand_edge_part(eu, ev, incident, embeddings, (0, size), 0)

    restrictions = canonical_level_restrictions("edge", cse.depth)

    def vectorized():
        block = cse.decode_block(0, size)
        return kernels.expand_edge_block(ctx, block)

    def restricted():
        block = cse.decode_block(0, size)
        return kernels.expand_edge_block(ctx, block, restrictions)

    scalar_s, ref = _best_of(scalar, repeats)
    vector_s, out = _best_of(vectorized, repeats)
    restricted_s, rout = _best_of(restricted, repeats)
    vert, counts, examined = out
    if not (
        np.array_equal(vert, ref.vert)
        and np.array_equal(counts, ref.counts)
        and examined == ref.candidates_examined
    ):
        raise RuntimeError(f"edge kernel output differs from scalar on {graph.name}")
    if not (
        np.array_equal(rout[0], ref.vert) and np.array_equal(rout[1], ref.counts)
    ):
        raise RuntimeError(
            f"restricted edge kernel diverges from the oracle on {graph.name}"
        )
    return {
        "embeddings": size,
        "emitted": int(ref.emitted),
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "restricted_seconds": restricted_s,
        "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
        "restricted_speedup": (
            scalar_s / restricted_s if restricted_s > 0 else float("inf")
        ),
        "restricted_vs_masked": (
            vector_s / restricted_s if restricted_s > 0 else float("inf")
        ),
        "examined_masked": int(examined),
        "examined_restricted": int(rout[2]),
    }


def bench_executors(graph, workers: int, sanitize: bool = False) -> dict:
    """Wall-clock of one 3-motif run per real executor, parity-checked."""
    record = {}
    maps = {}
    for spec in ("threads", "processes"):
        with KaleidoEngine(
            graph, workers=workers, executor=spec, sanitize=sanitize
        ) as engine:
            result = engine.run(MotifCounting(3))
        record[spec] = {
            "wall_seconds": result.wall_seconds,
            "pattern_counts": sorted(result.value.values()),
        }
        maps[spec] = result.pattern_map
    if maps["threads"] != maps["processes"]:
        raise RuntimeError("threads and processes disagree on the pattern map")
    threads_s = record["threads"]["wall_seconds"]
    processes_s = record["processes"]["wall_seconds"]
    record["processes_speedup_vs_threads"] = threads_s / processes_s
    record["cpu_count"] = os.cpu_count()
    return record


def bench_spilled_executors(
    graph,
    workers: int,
    executor: str = "processes",
    sanitize: bool = False,
    trace_out: str | None = None,
) -> dict:
    """The zero-copy success metric: spilled 3-motif, threads vs ``executor``.

    Every level is forced to disk (``spill-last``), so this measures the
    full out-of-core path — mmap-served parts, shared-memory contexts,
    and the adaptive I/O plan.  Pattern maps are asserted identical
    between the two executors, and the processes-vs-threads speedup plus
    ``cpu_count`` land in the record: the CI gate requires the chosen
    executor to beat threads only when the box actually has ≥ 2 cores
    (``gate_enforced``).
    """
    import tempfile

    from repro.obs import Tracer, write_chrome_trace

    record = {}
    maps = {}
    for spec in ("threads", executor):
        tracer = Tracer() if (trace_out and spec == executor) else None
        with tempfile.TemporaryDirectory(prefix="bench-spill-") as spill_dir:
            with KaleidoEngine(
                graph,
                workers=workers,
                executor=spec,
                storage_mode="spill-last",
                spill_dir=spill_dir,
                sanitize=sanitize,
                tracer=tracer,
            ) as engine:
                result = engine.run(MotifCounting(3))
        record[spec] = {
            "wall_seconds": result.wall_seconds,
            "pattern_counts": sorted(result.value.values()),
        }
        maps[spec] = result.pattern_map
        if spec == executor:
            record["io_plan"] = result.extra.get("io_plan")
            record["spilled_levels"] = result.extra.get("spilled_levels")
            if tracer is not None:
                write_chrome_trace(trace_out, tracer)
    if maps["threads"] != maps[executor]:
        raise RuntimeError(
            f"threads and {executor} disagree on the spilled pattern map"
        )
    threads_s = record["threads"]["wall_seconds"]
    executor_s = record[executor]["wall_seconds"]
    record["executor"] = executor
    record["processes_speedup_vs_threads"] = threads_s / executor_s
    cpu_count = os.cpu_count() or 1
    record["cpu_count"] = cpu_count
    record["gate_enforced"] = cpu_count >= 2 and executor == "processes"
    return record


def bench_hasher(graph, sanitize: bool = False) -> dict:
    """Hit rate of the pattern-hash cache over an FSM run.

    FSM hashes the pattern of every embedding it scores (motif mappers
    cache patterns themselves and barely touch the hasher), so this is
    the workload the raw-structure front cache exists for.
    """
    with KaleidoEngine(graph, sanitize=sanitize) as engine:
        engine.run(FrequentSubgraphMining(2, support=3))
        hasher = engine.hasher
        record = {
            "hits": hasher.hits,
            "misses": hasher.misses,
            "hit_rate": hasher.hit_rate,
        }
    if record["hits"] + record["misses"] > 0 and record["hit_rate"] < 0.5:
        raise RuntimeError(
            f"hasher hit rate collapsed: {record['hit_rate']:.3f} "
            f"({record['hits']} hits / {record['misses']} misses)"
        )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: tiny profiles, fewer repeats",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--executor",
        default="processes",
        choices=["threads", "processes"],
        help="executor measured against threads on the spilled workload",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace of the spilled --executor run here",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the engine benches under the part-purity sanitizer",
    )
    args = parser.parse_args(argv)

    profile = "tiny" if args.quick else "bench"
    repeats = 2 if args.quick else 3
    names = ["citeseer"] if args.quick else ["citeseer", "mico"]

    record: dict = {
        "benchmark": "expansion_kernels",
        "profile": profile,
        "datasets": {},
    }
    failures: list[str] = []
    for name in names:
        graph = datasets.load(name, profile)
        vertex = bench_vertex_kernel(graph, depth=2, repeats=repeats)
        edge = bench_edge_kernel(graph, repeats=repeats)
        record["datasets"][name] = {"vertex_kernel": vertex, "edge_kernel": edge}
        for kind, run in (("vertex", vertex), ("edge", edge)):
            print(
                f"{name:>10} {kind:>6}: {run['embeddings']} embeddings, "
                f"scalar {run['scalar_seconds'] * 1e3:.1f}ms vs "
                f"masked {run['vectorized_seconds'] * 1e3:.1f}ms "
                f"({run['speedup']:.1f}x) vs "
                f"restricted {run['restricted_seconds'] * 1e3:.1f}ms "
                f"({run['restricted_speedup']:.1f}x scalar, "
                f"{run['restricted_vs_masked']:.2f}x masked, "
                f"{run['examined_restricted']}/{run['examined_masked']} examined)"
            )
            if run["speedup"] < 1.0:
                failures.append(
                    f"{name} {kind} kernel slower than scalar "
                    f"({run['speedup']:.2f}x)"
                )
        if edge["restricted_vs_masked"] < 1.0:
            failures.append(
                f"{name} restricted edge kernel slower than masked "
                f"({edge['restricted_vs_masked']:.2f}x)"
            )

    smoke = datasets.load("citeseer", profile)
    record["sanitize"] = args.sanitize
    record["executors"] = bench_executors(
        smoke, workers=args.workers, sanitize=args.sanitize
    )
    print(
        f"  executors: threads "
        f"{record['executors']['threads']['wall_seconds']:.3f}s vs processes "
        f"{record['executors']['processes']['wall_seconds']:.3f}s "
        f"({record['executors']['processes_speedup_vs_threads']:.2f}x, "
        f"{record['executors']['cpu_count']} cores)"
    )
    record["spilled_executors"] = bench_spilled_executors(
        smoke,
        workers=args.workers,
        executor=args.executor,
        sanitize=args.sanitize,
        trace_out=args.trace_out,
    )
    spilled = record["spilled_executors"]
    print(
        f"    spilled: threads "
        f"{spilled['threads']['wall_seconds']:.3f}s vs {args.executor} "
        f"{spilled[args.executor]['wall_seconds']:.3f}s "
        f"({spilled['processes_speedup_vs_threads']:.2f}x, "
        f"{spilled['cpu_count']} cores, "
        f"gate {'on' if spilled['gate_enforced'] else 'off'})"
    )
    if spilled["gate_enforced"] and spilled["processes_speedup_vs_threads"] < 1.0:
        failures.append(
            f"processes slower than threads on the spilled workload "
            f"({spilled['processes_speedup_vs_threads']:.2f}x on "
            f"{spilled['cpu_count']} cores)"
        )
    record["hasher"] = bench_hasher(smoke, sanitize=args.sanitize)
    print(
        f"     hasher: {record['hasher']['hits']} hits / "
        f"{record['hasher']['misses']} misses "
        f"(hit rate {record['hasher']['hit_rate']:.3f})"
    )

    record["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
