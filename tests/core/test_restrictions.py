"""Oracle-differential suite for the symmetry-breaking restriction compiler.

Two layers of guarantees:

* the **pattern compiler** (`compile_restrictions`) emits the exact
  minimal partial orders the stabilizer-chain construction promises, and
  every compiled set accepts exactly one assignment per automorphism
  orbit (exhaustively checked for the hand-built corpus);
* the **fused kernels** driven by `canonical_level_restrictions` emit
  levels byte-identical to the unrestricted scalar oracle, at every
  level, on multiple seeded graphs — and whole engine runs (every
  shipped app, restrictions on vs off) produce byte-identical pattern
  maps.
"""

from itertools import permutations

import numpy as np
import pytest

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    Pattern,
)
from repro.apps import PatternMatching, TriangleCounting, VertexInducedFSM
from repro.core import (
    CSE,
    KernelRestrictions,
    Restriction,
    RestrictionSet,
    canonical_level_restrictions,
    compile_restrictions,
    expand_edge_level,
    expand_vertex_level,
    position_orbits,
)
from repro.core import kernels
from repro.core.isomorphism import automorphisms
from repro.graph.edge_index import EdgeIndex

from tests.conftest import random_labeled_graph

# ----------------------------------------------------------------------
# Hand-built symmetric pattern corpus
# ----------------------------------------------------------------------
TRIANGLE = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
STAR4 = Pattern.from_adjacency(
    [0, 0, 0, 0], [[0, 1, 1, 1], [1, 0, 0, 0], [1, 0, 0, 0], [1, 0, 0, 0]]
)
CLIQUE4 = Pattern.from_adjacency(
    [0, 0, 0, 0], [[0, 1, 1, 1], [1, 0, 1, 1], [1, 1, 0, 1], [1, 1, 1, 0]]
)
PATH3 = Pattern.from_adjacency([0, 0, 0], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
#: K4 minus one edge: positions 0, 1 are the degree-3 pair.
DIAMOND = Pattern.from_adjacency(
    [0, 0, 0, 0], [[0, 1, 1, 1], [1, 0, 1, 1], [1, 1, 0, 0], [1, 1, 0, 0]]
)

CORPUS = {
    "triangle": TRIANGLE,
    "star": STAR4,
    "clique": CLIQUE4,
    "path": PATH3,
    "diamond": DIAMOND,
}


# ----------------------------------------------------------------------
# Compiler: exact expected restriction sets
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name, expected",
    [
        ("triangle", ((0, 1), (1, 2))),
        ("star", ((1, 2), (2, 3))),
        ("clique", ((0, 1), (1, 2), (2, 3))),
        ("path", ((0, 2),)),
        ("diamond", ((0, 1), (2, 3))),
    ],
)
def test_compiler_emits_expected_sets(name, expected):
    rset = compile_restrictions(CORPUS[name])
    assert rset.num_vertices == CORPUS[name].num_vertices
    assert tuple((r.smaller, r.larger) for r in rset.restrictions) == expected


def test_labeled_pattern_with_trivial_group_has_no_restrictions():
    distinct = Pattern.from_adjacency([0, 1, 2], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    assert compile_restrictions(distinct).restrictions == ()


def test_labels_shrink_the_restriction_set():
    # Triangle with one distinguished vertex: only the label-0 pair swaps.
    semi = Pattern.from_adjacency([1, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    rset = compile_restrictions(semi)
    assert tuple((r.smaller, r.larger) for r in rset.restrictions) == ((1, 2),)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_compiled_sets_are_transitively_reduced(name):
    """Minimality: dropping any restriction changes the accepted set."""
    rset = compile_restrictions(CORPUS[name])
    k = rset.num_vertices
    for dropped in rset.restrictions:
        smaller = RestrictionSet(
            num_vertices=k,
            restrictions=tuple(r for r in rset.restrictions if r != dropped),
        )
        difference = [
            binding
            for binding in permutations(range(k))
            if smaller.accepts(binding) != rset.accepts(binding)
        ]
        assert difference, f"{dropped} is redundant in {name}"


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_exactly_one_accepted_assignment_per_automorphism_orbit(name):
    """The defining property: among the |Aut| automorphic re-bindings of
    any injective assignment, exactly one satisfies the compiled set."""
    pattern = CORPUS[name]
    rset = compile_restrictions(pattern)
    group = automorphisms(pattern)
    k = pattern.num_vertices
    values = (10, 21, 34, 47, 58)[:k]
    for assignment in permutations(values):
        orbit = {tuple(assignment[perm[t]] for t in range(k)) for perm in group}
        accepted = [binding for binding in sorted(orbit) if rset.accepts(binding)]
        assert len(accepted) == 1, (name, assignment, accepted)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_restrictions_only_relate_positions_in_one_orbit_chain(name):
    """Restriction endpoints are ascending and lie inside orbits of the
    stabilizer chain — sanity for the construction, via position_orbits."""
    pattern = CORPUS[name]
    rset = compile_restrictions(pattern)
    orbits = position_orbits(pattern)
    by_position = {}
    for orbit in orbits:
        for position in orbit:
            by_position[position] = orbit
    for r in rset.restrictions:
        assert r.smaller < r.larger
        assert by_position[r.smaller] == by_position[r.larger]


def test_level_constraint_split():
    rset = compile_restrictions(CLIQUE4)
    constraints = rset.level_constraints()
    assert [c.position for c in constraints] == [1, 2, 3]
    assert [c.lower_cols for c in constraints] == [(0,), (1,), (2,)]
    assert all(c.upper_cols == () for c in constraints)
    diamond = compile_restrictions(DIAMOND)
    assert diamond.constraints_at(1).lower_cols == (0,)
    assert diamond.constraints_at(2).lower_cols == ()
    assert diamond.constraints_at(3).lower_cols == (2,)


def test_restriction_set_validation():
    with pytest.raises(ValueError):
        RestrictionSet(num_vertices=3, restrictions=(Restriction(1, 1),))
    with pytest.raises(ValueError):
        RestrictionSet(num_vertices=3, restrictions=(Restriction(0, 3),))
    rset = RestrictionSet(num_vertices=3, restrictions=(Restriction(0, 1),))
    with pytest.raises(ValueError):
        rset.accepts((1, 2))  # binding too short


def test_canonical_level_restrictions_layout():
    vertex = canonical_level_restrictions("vertex", 3)
    assert vertex.suffix_from == (1, 2, 3)
    assert vertex.strict_lower_col == 0
    edge = canonical_level_restrictions("edge", 3)
    assert edge.suffix_from == (1, 1, 2, 2, 3, 3)
    assert edge.num_gather_cols == 6
    with pytest.raises(ValueError):
        canonical_level_restrictions("vertex", 0)
    with pytest.raises(ValueError):
        canonical_level_restrictions("face", 2)


# ----------------------------------------------------------------------
# Kernel differential: fused restrictions vs the scalar oracle, per level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11, 23])
def test_vertex_levels_byte_identical_to_scalar_oracle(seed):
    graph = random_labeled_graph(40, 110, 3, seed=seed)
    restricted = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    oracle = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(3):
        expand_vertex_level(
            graph,
            restricted,
            None,
            restrictions=canonical_level_restrictions("vertex", restricted.depth),
        )
        expand_vertex_level(graph, oracle, None, use_kernels=False)
        assert restricted.size() == oracle.size()
        assert np.array_equal(
            restricted.decode_block(0, restricted.size()),
            oracle.decode_block(0, oracle.size()),
        ), f"vertex level {restricted.depth} diverged (seed {seed})"


@pytest.mark.parametrize("seed", [3, 11, 23])
def test_edge_levels_byte_identical_to_scalar_oracle(seed):
    graph = random_labeled_graph(30, 70, 3, seed=seed)
    index = EdgeIndex(graph)
    restricted = CSE(np.arange(index.num_edges, dtype=np.int32))
    oracle = CSE(np.arange(index.num_edges, dtype=np.int32))
    for _ in range(2):
        expand_edge_level(
            graph,
            index,
            restricted,
            None,
            restrictions=canonical_level_restrictions("edge", restricted.depth),
        )
        expand_edge_level(graph, index, oracle, None, use_kernels=False)
        assert restricted.size() == oracle.size()
        assert np.array_equal(
            restricted.decode_block(0, restricted.size()),
            oracle.decode_block(0, oracle.size()),
        ), f"edge level {restricted.depth} diverged (seed {seed})"


def test_restricted_kernel_examines_fewer_candidates():
    graph = random_labeled_graph(40, 110, 3, seed=11)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    expand_vertex_level(graph, cse, None)
    block = cse.decode_block(0, cse.size())
    ctx = kernels.vertex_kernel_context(graph)
    vert_m, counts_m, examined_m = kernels.expand_vertex_block(ctx, block)
    vert_r, counts_r, examined_r = kernels.expand_vertex_block(
        ctx, block, canonical_level_restrictions("vertex", block.shape[1])
    )
    assert np.array_equal(vert_m, vert_r)
    assert np.array_equal(counts_m, counts_r)
    assert examined_r < examined_m


def test_kernel_rejects_mismatched_restrictions():
    graph = random_labeled_graph(20, 40, 2, seed=5)
    ctx = kernels.vertex_kernel_context(graph)
    block = np.array([[0, 1], [1, 2]], dtype=np.int64)
    with pytest.raises(ValueError, match="edge"):
        kernels.expand_vertex_block(
            ctx, block, canonical_level_restrictions("edge", 2)
        )
    with pytest.raises(ValueError, match="level"):
        kernels.expand_vertex_block(
            ctx, block, canonical_level_restrictions("vertex", 3)
        )


def test_fused_path_requires_packed_view():
    graph = random_labeled_graph(20, 40, 2, seed=5)
    ctx = kernels.VertexKernelContext(
        indptr=graph.indptr,
        indices=graph.indices,
        num_vertices=graph.num_vertices,
        out_dtype=graph.id_dtype,
    )
    block = np.array([[0, 1], [1, 2]], dtype=np.int64)
    with pytest.raises(ValueError, match="adjacency_keys"):
        kernels.expand_vertex_block(
            ctx, block, canonical_level_restrictions("vertex", 2)
        )


# ----------------------------------------------------------------------
# Whole-app differential: every shipped app, restrictions on vs off
# ----------------------------------------------------------------------
SHIPPED_APPS = {
    "tc": lambda: TriangleCounting(),
    "motif": lambda: MotifCounting(3),
    "clique": lambda: CliqueDiscovery(3),
    "matching": lambda: PatternMatching(TRIANGLE),
    "fsm": lambda: FrequentSubgraphMining(2, support=4),
    "vfsm": lambda: VertexInducedFSM(2, support=4),
}


def _engine_run(graph, make_app, use_restrictions):
    with KaleidoEngine(graph, use_restrictions=use_restrictions) as engine:
        return engine.run(make_app())


@pytest.mark.parametrize("seed", [11, 23])
@pytest.mark.parametrize("app_name", sorted(SHIPPED_APPS))
def test_shipped_apps_pattern_maps_identical_with_and_without(app_name, seed):
    graph = random_labeled_graph(30, 70, 3, seed=seed)
    restricted = _engine_run(graph, SHIPPED_APPS[app_name], True)
    oracle = _engine_run(graph, SHIPPED_APPS[app_name], False)
    assert restricted.pattern_map == oracle.pattern_map
    assert restricted.level_sizes == oracle.level_sizes
    assert restricted.value == oracle.value
    assert restricted.extra["restrictions"] is True
    assert oracle.extra["restrictions"] is False


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_pattern_counts_identical_with_and_without(name):
    """PatternMatching over every hand-built symmetric pattern: the
    restricted run reports the same per-pattern map as the oracle run."""
    graph = random_labeled_graph(24, 60, 1, seed=7)
    restricted = _engine_run(graph, lambda: PatternMatching(CORPUS[name]), True)
    oracle = _engine_run(graph, lambda: PatternMatching(CORPUS[name]), False)
    assert restricted.pattern_map == oracle.pattern_map
    assert restricted.value == oracle.value


def test_engine_records_compiled_pattern_restrictions():
    graph = random_labeled_graph(24, 60, 1, seed=7)
    result = _engine_run(graph, lambda: PatternMatching(CLIQUE4), True)
    assert result.extra["pattern_restrictions"] == [(0, 1), (1, 2), (2, 3)]
    # Apps without a single query pattern carry none.
    result = _engine_run(graph, SHIPPED_APPS["motif"], True)
    assert result.extra["pattern_restrictions"] is None
    # Clique and triangle counting expose their implicit patterns.
    result = _engine_run(graph, SHIPPED_APPS["clique"], True)
    assert result.extra["pattern_restrictions"] == [(0, 1), (1, 2)]
    result = _engine_run(graph, SHIPPED_APPS["tc"], True)
    assert result.extra["pattern_restrictions"] == [(0, 1), (1, 2)]


def test_level_plans_carry_restrictions_and_pattern_constraints():
    graph = random_labeled_graph(24, 60, 1, seed=7)
    with KaleidoEngine(graph) as engine:
        engine.planner.active_restriction_set = compile_restrictions(CLIQUE4)
        from repro.core.api import EngineContext

        ctx = EngineContext(graph=graph, engine=engine)
        cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
        plan = engine.planner.plan_level(ctx, cse)
        assert isinstance(plan.restrictions, KernelRestrictions)
        assert plan.restrictions.kind == "vertex"
        assert plan.restrictions.level == 1
        assert plan.pattern_constraints is not None
        assert plan.pattern_constraints.position == 1
        assert plan.pattern_constraints.lower_cols == (0,)
    with KaleidoEngine(graph, use_restrictions=False) as engine:
        ctx = EngineContext(graph=graph, engine=engine)
        cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
        plan = engine.planner.plan_level(ctx, cse)
        assert plan.restrictions is None
