"""Unit tests for vertex-induced FSM."""

import pytest

from repro import KaleidoEngine
from repro.apps.fsm_vertex import VertexInducedFSM
from repro.apps.reference import connected_vertex_sets
from repro.core import Pattern, canonical_key
from repro.core.isomorphism import pattern_from_key
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def vfsm_naive(graph, k, support):
    """Brute force: induced patterns of connected k-sets, exact MNI."""
    domains = {}
    for verts in connected_vertex_sets(graph, k):
        pattern = Pattern.from_vertex_embedding(graph, verts)
        key = canonical_key(pattern)
        canon = pattern_from_key(key)
        doms = domains.setdefault(key, [set() for _ in range(k)])
        from itertools import permutations

        for perm in permutations(range(k)):
            if pattern.permute(perm) == canon:
                for pos in range(k):
                    doms[pos].add(verts[perm[pos]])
    return {
        key: min(len(d) for d in doms)
        for key, doms in domains.items()
        if min(len(d) for d in doms) >= support
    }


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("k,support", [(2, 2), (3, 2), (3, 3)])
def test_matches_naive(seed, k, support):
    graph = random_labeled_graph(11, 20, 2, seed=200 + seed)
    got = KaleidoEngine(graph).run(VertexInducedFSM(k, support, exact_mni=True))
    expected = vfsm_naive(graph, k, support)
    assert sorted(got.value.values()) == sorted(expected.values()), (seed, k, support)


def test_induced_semantics_differ_from_edge_induced(paper_graph):
    """A triangle's vertex set never supports the induced 3-chain pattern."""
    g = paper_graph.relabel([0] * 6)
    result = KaleidoEngine(g).run(VertexInducedFSM(3, 1, exact_mni=True))
    reps = {tuple(sorted(p.degree_sequence())): s
            for h, s in result.value.items()
            for p in [result.value.patterns[h]]}
    # Chain (1,1,2) and triangle (2,2,2) are separate induced patterns.
    assert (1, 1, 2) in reps and (2, 2, 2) in reps


def test_label_frequency_seed_filter():
    g = from_edge_list([(0, 1), (1, 2), (2, 3)], labels=[0, 0, 0, 5])
    # Label 5 occurs once: with support 2 it cannot seed anything.
    result = KaleidoEngine(g).run(VertexInducedFSM(2, 2, exact_mni=True))
    for pattern in result.value.patterns.values():
        assert 5 not in pattern.labels


def test_threshold_mode_same_frequent_set():
    graph = random_labeled_graph(14, 28, 2, seed=77)
    exact = KaleidoEngine(graph).run(VertexInducedFSM(3, 3, exact_mni=True))
    fast = KaleidoEngine(graph).run(VertexInducedFSM(3, 3))
    assert set(exact.value) == set(fast.value)


def test_validates():
    with pytest.raises(ValueError):
        VertexInducedFSM(1, 2)
    with pytest.raises(ValueError):
        VertexInducedFSM(3, 0)


def test_automorphism_placements_used(paper_graph):
    """Symmetric patterns fill domains through every automorphism."""
    g = paper_graph.relabel([0] * 6)
    result = KaleidoEngine(g).run(VertexInducedFSM(2, 1, exact_mni=True))
    # Single-edge pattern: support = number of distinct endpoint vertices.
    [(h, s)] = list(result.value.items())
    assert s == 5  # vertices 1..5 all appear in edges
