"""Unit tests for the Planner stage (plan → execute → aggregate)."""

import numpy as np
import pytest

from repro.core import CSE, EngineContext, InMemorySink, KaleidoEngine, Planner
from repro.core.plan import AggregatePlan, LevelPlan
from repro.errors import PlanError
from repro.storage import MemoryBudget, MemoryMeter, SpillingSink, StoragePolicy
from repro.apps import MotifCounting


def _planner(graph, policy=None, **kwargs):
    policy = policy or StoragePolicy(MemoryBudget(None), MemoryMeter())
    return Planner(graph, policy, **kwargs)


def _ctx(graph):
    # The planner only reads ctx.edge_index; a throwaway engine suffices.
    return EngineContext(graph=graph, engine=KaleidoEngine(graph))


def test_plan_level_covers_level(paper_graph):
    planner = _planner(paper_graph, workers=2, parts_per_worker=3)
    cse = CSE(np.arange(6))
    plan = planner.plan_level(_ctx(paper_graph), cse)
    assert isinstance(plan, LevelPlan)
    assert plan.size == 6
    assert plan.num_parts == 6
    assert plan.part_bounds[0][0] == 0
    assert plan.part_bounds[-1][1] == 6
    for (_, e), (s, _) in zip(plan.part_bounds, plan.part_bounds[1:]):
        assert e == s
    assert plan.costs is not None
    assert plan.predicted_entries == int(plan.costs.sum())
    assert not plan.spill
    assert isinstance(plan.sink, InMemorySink)


def test_plan_without_prediction_splits_evenly(paper_graph):
    planner = _planner(paper_graph, use_prediction=False, parts_per_worker=2)
    cse = CSE(np.arange(6))
    plan = planner.plan_level(_ctx(paper_graph), cse)
    assert plan.costs is None
    assert plan.part_bounds == [(0, 3), (3, 6)]
    assert plan.predicted_entries == 6 * max(1, int(paper_graph.average_degree))


def test_plan_memory_mode_skips_policy(paper_graph):
    planner = _planner(paper_graph, storage_mode="memory")
    plan = planner.plan_level(_ctx(paper_graph), CSE(np.arange(6)))
    assert plan.sink is None
    assert not plan.spill


def test_plan_guard_raises(paper_graph):
    planner = _planner(paper_graph, max_embeddings=1)
    with pytest.raises(PlanError, match="max_embeddings"):
        planner.plan_level(_ctx(paper_graph), CSE(np.arange(6)))


def test_plan_spill_decision(paper_graph, tmp_path):
    from repro.storage import PartStore

    policy = StoragePolicy(
        MemoryBudget(1), MemoryMeter(), store=PartStore(str(tmp_path)),
        synchronous_io=True, prefetch=False,
    )
    planner = _planner(paper_graph, policy=policy)
    plan = planner.plan_level(_ctx(paper_graph), CSE(np.arange(6)))
    assert plan.spill
    assert isinstance(plan.sink, SpillingSink)


def test_plan_aggregate_even_vs_predicted(paper_graph):
    planner = _planner(paper_graph, parts_per_worker=2)
    cse = CSE(np.arange(6))
    ctx = _ctx(paper_graph)

    app = MotifCounting(3)  # mapper cost tracks candidates
    plan = planner.plan_aggregate(ctx, app, cse)
    assert isinstance(plan, AggregatePlan)
    assert plan.costs is not None

    class Uniform(MotifCounting):
        mapper_cost_tracks_candidates = False

    plan = planner.plan_aggregate(ctx, Uniform(3), cse)
    assert plan.costs is None
    assert plan.part_bounds == [(0, 3), (3, 6)]
