"""The lint CLIs: ``python -m repro.analysis`` and ``repro lint``."""

from pathlib import Path

from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = str(Path(__file__).parents[2] / "src" / "repro")


def test_module_cli_clean_tree_exits_zero(capsys):
    assert analysis_main([SRC]) == 0
    assert capsys.readouterr().out == ""


def test_module_cli_reports_violations(capsys):
    bad = str(FIXTURES / "r004_bad.py")
    assert analysis_main([bad, "--select", "R004"]) == 1
    out, err = capsys.readouterr()
    assert "R004" in out
    assert "r004_bad.py" in out
    assert "violations" in err


def test_module_cli_missing_path_exits_two(capsys):
    assert analysis_main(["does/not/exist.py"]) == 2
    assert "error:" in capsys.readouterr().err


def test_module_cli_unknown_rule_exits_two(capsys):
    assert analysis_main([SRC, "--select", "R999"]) == 2
    assert "R999" in capsys.readouterr().err


def test_module_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("R001", "R002", "R003", "R004", "R005"):
        assert rule in out


def test_repro_lint_subcommand(capsys):
    assert repro_main(["lint", SRC]) == 0
    bad = str(FIXTURES / "r005_bad.py")
    assert repro_main(["lint", bad, "--select", "R005"]) == 1
    assert "R005" in capsys.readouterr().out


def test_repro_lint_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "R003" in capsys.readouterr().out
