"""Exact labeled graph isomorphism for small patterns.

Used as ground truth in tests and wherever the EigenHash guarantee does not
apply (embeddings with 9+ vertices).  Two entry points:

* :func:`are_isomorphic` — backtracking search with label/degree pruning.
* :func:`canonical_key` — an exact canonical form: the lexicographically
  smallest ``(labels, bits)`` over all permutations consistent with the
  ``(label, degree)`` sort, which is a complete isomorphism invariant.
"""

from __future__ import annotations

from itertools import permutations

from .pattern import Pattern

__all__ = [
    "are_isomorphic",
    "canonical_key",
    "canonical_form",
    "pattern_from_key",
    "CanonicalKey",
    "automorphism_count",
    "automorphisms",
    "position_orbits",
]


def _sort_groups(pattern: Pattern) -> list[list[int]]:
    """Positions grouped by their (label, degree) sort key, keys ascending."""
    degrees = pattern.degree_sequence()
    keyed = sorted(range(pattern.num_vertices), key=lambda i: (pattern.labels[i], degrees[i]))
    groups: list[list[int]] = []
    prev_key: tuple[int, int] | None = None
    for pos in keyed:
        key = (pattern.labels[pos], degrees[pos])
        if key != prev_key:
            groups.append([])
            prev_key = key
        groups[-1].append(pos)
    return groups


def _group_permutations(groups: list[list[int]]):
    """Yield full permutations composed of independent within-group ones."""

    def rec(idx: int, prefix: list[int]):
        if idx == len(groups):
            yield tuple(prefix)
            return
        for sub in permutations(groups[idx]):
            yield from rec(idx + 1, prefix + list(sub))

    yield from rec(0, [])


#: Canonical key: (vertex labels, adjacency bitmap, edge labels or ()).
CanonicalKey = tuple[tuple[int, ...], int, tuple[int, ...]]


def _key_of(pattern: Pattern) -> CanonicalKey:
    return (pattern.labels, pattern.bits, pattern.edge_labels or ())


def pattern_from_key(key: CanonicalKey) -> Pattern:
    """Rebuild the pattern a canonical key describes."""
    labels, bits, edge_labels = key
    return Pattern(labels, bits, tuple(edge_labels) if edge_labels else None)


def canonical_key(pattern: Pattern) -> CanonicalKey:
    """Exact canonical form ``(labels, bits, edge_labels)`` of a pattern.

    Any isomorphism preserves labels and degrees, so minimising over the
    permutations that respect the (label, degree) grouping covers every
    isomorphic relabeling; the minimum is therefore a complete invariant.
    Worst case is factorial in the largest tie group, which is tiny for
    mining-sized patterns (k <= 8).
    """
    return canonical_form(pattern)[0]


def canonical_form(pattern: Pattern) -> tuple[CanonicalKey, tuple[int, ...]]:
    """Canonical key plus the witnessing permutation.

    The permutation ``perm`` satisfies ``pattern.permute(perm) ==
    pattern_from_key(key)`` — i.e. canonical position ``t`` corresponds to
    original position ``perm[t]``.  The MNI counter needs the witness to
    map embedding vertices onto canonical positions consistently across
    all automorphic raw structures.
    """
    groups = _sort_groups(pattern)
    best: CanonicalKey | None = None
    best_perm: tuple[int, ...] | None = None
    for perm in _group_permutations(groups):
        candidate = pattern.permute(perm)
        key = _key_of(candidate)
        if best is None or key < best:
            best = key
            best_perm = perm
    assert best is not None and best_perm is not None
    return best, best_perm


def are_isomorphic(a: Pattern, b: Pattern) -> bool:
    """Exact labeled-isomorphism test between two patterns."""
    if a.num_vertices != b.num_vertices:
        return False
    if sorted(a.labels) != sorted(b.labels):
        return False
    if sorted(a.edge_labels or ()) != sorted(b.edge_labels or ()):
        return False
    deg_a, deg_b = a.degree_sequence(), b.degree_sequence()
    if sorted(zip(a.labels, deg_a)) != sorted(zip(b.labels, deg_b)):
        return False
    # Backtracking: map positions of `a` to positions of `b`.
    k = a.num_vertices
    candidates: list[list[int]] = []
    for i in range(k):
        cands = [
            j
            for j in range(k)
            if a.labels[i] == b.labels[j] and deg_a[i] == deg_b[j]
        ]
        if not cands:
            return False
        candidates.append(cands)
    order = sorted(range(k), key=lambda i: len(candidates[i]))
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def extend(step: int) -> bool:
        if step == k:
            return True
        i = order[step]
        for j in candidates[i]:
            if j in used:
                continue
            ok = all(
                a.has_edge(i, other) == b.has_edge(j, mapping[other])
                and (
                    not a.has_edge(i, other)
                    or a.edge_label_at(i, other)
                    == b.edge_label_at(j, mapping[other])
                )
                for other in mapping
            )
            if ok:
                mapping[i] = j
                used.add(j)
                if extend(step + 1):
                    return True
                del mapping[i]
                used.discard(j)
        return False

    return extend(0)


def automorphisms(pattern: Pattern) -> list[tuple[int, ...]]:
    """All automorphisms of the pattern, as permutations ``perm`` with
    ``pattern.permute(perm) == pattern``.

    Candidates are restricted to (label, degree)-preserving permutations,
    which every automorphism must be.  Used by the FSM MNI counter: a
    vertex observed at position ``t`` is also a valid image of every
    position in ``t``'s automorphism orbit.
    """
    perms: list[tuple[int, ...]] = []
    keyed = sorted(
        range(pattern.num_vertices),
        key=lambda i: (pattern.labels[i], pattern.degree_sequence()[i]),
    )
    # Group positions (not sort-destinations) by key for identity-preserving
    # permutations of the *original* index space.
    degrees = pattern.degree_sequence()
    by_key: dict[tuple[int, int], list[int]] = {}
    for pos in keyed:
        by_key.setdefault((pattern.labels[pos], degrees[pos]), []).append(pos)
    groups = [by_key[k] for k in sorted(by_key)]

    def rec(idx: int, mapping: dict[int, int]) -> None:
        if idx == len(groups):
            perm = [0] * pattern.num_vertices
            for src, dst in mapping.items():
                perm[src] = dst
            tperm = tuple(perm)
            if pattern.permute(tperm) == pattern:
                perms.append(tperm)
            return
        group = groups[idx]
        for sub in permutations(group):
            nxt = dict(mapping)
            for src, dst in zip(group, sub):
                nxt[src] = dst
            rec(idx + 1, nxt)

    rec(0, {})
    return perms


def position_orbits(pattern: Pattern) -> list[tuple[int, ...]]:
    """Orbits of the pattern's positions under its automorphism group.

    Two positions share an orbit iff some automorphism maps one to the
    other — they are structurally interchangeable.  The restriction
    compiler (:mod:`repro.core.restrictions`) breaks exactly these
    symmetries; orbits are returned sorted (and internally ascending) so
    callers iterate deterministically.
    """
    k = pattern.num_vertices
    parent = list(range(k))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for perm in automorphisms(pattern):
        for i in range(k):
            a, b = find(i), find(perm[i])
            if a != b:
                parent[max(a, b)] = min(a, b)
    by_root: dict[int, list[int]] = {}
    for i in range(k):
        by_root.setdefault(find(i), []).append(i)
    return [tuple(by_root[root]) for root in sorted(by_root)]


def automorphism_count(pattern: Pattern) -> int:
    """Number of automorphisms of the pattern (exact, for small k)."""
    groups = _sort_groups(pattern)
    count = 0
    base, _ = pattern.sorted_by_label_degree()
    for perm in _group_permutations(groups):
        if pattern.permute(perm) == base:
            count += 1
    return count
