"""Motif frequency distribution of a protein-interaction-style network.

The paper's introduction cites Przulj's work: the frequency distribution
of small motifs characterises protein-protein interaction (PPI) networks.
This example builds a synthetic PPI-like network (power-law with elevated
clustering), counts all 3- and 4-motifs, and prints the census with
human-readable shape names.

Usage::

    python examples/motif_census_ppi.py
"""

from __future__ import annotations

import numpy as np

from repro import KaleidoEngine, MotifCounting
from repro.core import Pattern, canonical_key
from repro.graph import GraphBuilder, preferential_attachment

SEED = 7

#: Canonical keys of the named 3- and 4-vertex motifs.
_SHAPES: dict[tuple, str] = {}


def _register(name: str, k: int, edges: list[tuple[int, int]]) -> None:
    mat = [[0] * k for _ in range(k)]
    for u, v in edges:
        mat[u][v] = mat[v][u] = 1
    _SHAPES[canonical_key(Pattern.from_adjacency([0] * k, mat))] = name


_register("3-chain", 3, [(0, 1), (1, 2)])
_register("triangle", 3, [(0, 1), (1, 2), (0, 2)])
_register("4-path", 4, [(0, 1), (1, 2), (2, 3)])
_register("3-star", 4, [(0, 1), (0, 2), (0, 3)])
_register("4-cycle", 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
_register("tailed-triangle", 4, [(0, 1), (1, 2), (0, 2), (2, 3)])
_register("diamond", 4, [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
_register("4-clique", 4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])


def shape_name(pattern: Pattern) -> str:
    return _SHAPES.get(canonical_key(pattern), f"unknown({pattern.num_edges} edges)")


def build_ppi_network():
    """Power-law graph with extra triadic closure (PPI-like clustering)."""
    base = preferential_attachment(600, 2, seed=SEED)
    rng = np.random.default_rng(SEED + 1)
    builder = GraphBuilder(base.num_vertices)
    builder.add_edges(base.edges())
    # Triadic closure: close a fraction of open wedges.
    for v in range(base.num_vertices):
        nbrs = base.neighbors(v).tolist()
        for i in range(len(nbrs) - 1):
            if rng.random() < 0.08:
                a, b = nbrs[i], nbrs[i + 1]
                if a != b:
                    builder.add_edge(a, b)
    return builder.build(name="ppi")


def main() -> None:
    graph = build_ppi_network()
    print(f"PPI-like network: {graph}\n")
    for k in (3, 4):
        result = KaleidoEngine(graph).run(MotifCounting(k))
        total = result.value.total
        print(f"{k}-motif census ({total} embeddings, "
              f"{result.wall_seconds:.2f}s):")
        rows = sorted(result.value.items(), key=lambda kv: -kv[1])
        for phash, count in rows:
            pattern = result.value.patterns[phash]
            share = 100.0 * count / total
            print(f"  {shape_name(pattern):<16} {count:>10}  ({share:5.1f}%)")
        print()
    print("Graphlet signature: closed shapes (triangle/diamond/clique) are")
    print("over-represented versus a random graph — the clustering that")
    print("motif censuses use to fingerprint PPI networks.")


if __name__ == "__main__":
    main()
