"""The adaptive I/O scheduler: plan_io math and StoragePolicy integration."""

import numpy as np

from repro.balance.predict import IOPlan, plan_io
from repro.storage.hybrid import StoragePolicy
from repro.storage.meter import MemoryBudget, MemoryMeter
from repro.storage.spill import PartStore


# ----------------------------------------------------------------------
# plan_io: the pure scheduling function
# ----------------------------------------------------------------------
def test_defaults_without_measurements():
    plan = plan_io(predicted_entries=10_000_000, bytes_per_entry=4)
    assert plan.prefetch_depth == 1
    assert plan.part_entries == 1 << 16
    assert plan.source == "default"
    assert plan.window_bytes == 2 * (1 << 16) * 4


def test_depth_from_rate_ratio():
    # Compute outruns the disk 3x: three candidate reads in flight.
    plan = plan_io(
        predicted_entries=10_000_000,
        bytes_per_entry=4,
        read_bps=100e6,
        compute_bps=300e6,
    )
    assert plan.prefetch_depth == 3
    assert plan.source == "measured"


def test_depth_clamped_to_max():
    plan = plan_io(
        predicted_entries=10_000_000,
        bytes_per_entry=4,
        read_bps=1e6,
        compute_bps=1e9,
    )
    assert plan.prefetch_depth == 8


def test_fast_disk_keeps_depth_one():
    plan = plan_io(
        predicted_entries=10_000_000,
        bytes_per_entry=4,
        read_bps=1e9,
        compute_bps=100e6,
    )
    assert plan.prefetch_depth == 1


def test_headroom_bounds_part_size():
    # A quarter of the headroom, split across (1 + depth) parts in flight.
    headroom = 16 << 20
    plan = plan_io(
        predicted_entries=100_000_000, bytes_per_entry=4, headroom_bytes=headroom
    )
    assert plan.part_entries == (headroom // 4) // (2 * 4)
    assert plan.window_bytes <= headroom // 4


def test_part_size_clamps():
    tight = plan_io(
        predicted_entries=100_000_000, bytes_per_entry=4, headroom_bytes=1024
    )
    assert tight.part_entries == 1 << 12  # floor
    vast = plan_io(
        predicted_entries=1 << 40, bytes_per_entry=4, headroom_bytes=1 << 40
    )
    assert vast.part_entries == 1 << 20  # ceiling


def test_parts_never_exceed_level_size():
    plan = plan_io(predicted_entries=20_000, bytes_per_entry=4)
    assert plan.part_entries == 20_000
    small = plan_io(predicted_entries=100, bytes_per_entry=4)
    assert small.part_entries == 1 << 12  # floor still wins


def test_as_dict_roundtrip():
    plan = plan_io(predicted_entries=1_000_000, bytes_per_entry=8)
    payload = plan.as_dict()
    assert payload["part_entries"] == plan.part_entries
    assert IOPlan(**payload) == plan


# ----------------------------------------------------------------------
# StoragePolicy: the stateful scheduler around it
# ----------------------------------------------------------------------
def _policy(tmp_path, **kwargs):
    return StoragePolicy(
        MemoryBudget(kwargs.pop("limit", None)),
        MemoryMeter(),
        store=PartStore(str(tmp_path)),
        **kwargs,
    )


def test_fixed_mode_keeps_knobs(tmp_path):
    policy = _policy(tmp_path, adaptive_io=False, prefetch_depth=3)
    plan = policy.plan_io(10_000_000)
    assert plan.source == "fixed"
    assert plan.part_entries == 1 << 16
    assert plan.prefetch_depth == 3
    assert policy.last_io_plan is plan


def test_adaptive_mode_uses_observed_rates(tmp_path):
    policy = _policy(tmp_path, adaptive_io=True)
    store = policy.store
    # Simulate a level that computed 4x faster than the disk delivered.
    store.io.record("read", 100_000_000, 1.0)
    policy.observe_level(emitted_entries=1000, emitted_bytes=400_000_000, seconds=1.0)
    assert policy._read_bps is not None and policy._compute_bps is not None
    plan = policy.plan_io(10_000_000)
    assert plan.source == "measured"
    assert plan.prefetch_depth == 4


def test_observe_level_smooths(tmp_path):
    policy = _policy(tmp_path, adaptive_io=True)
    policy.observe_level(1000, 100.0, 1.0)
    assert policy._compute_bps == 100.0
    policy.observe_level(1000, 300.0, 1.0)
    assert policy._compute_bps == 200.0  # alpha = 0.5


def test_configured_depth_is_a_floor(tmp_path):
    policy = _policy(tmp_path, adaptive_io=True, prefetch_depth=4)
    plan = policy.plan_io(10_000_000)  # no measurements: plan says 1
    assert plan.prefetch_depth == 4
    assert plan.window_bytes == 5 * plan.part_entries * plan.bytes_per_entry


def test_engine_reports_io_plan(paper_graph, tmp_path):
    from repro.apps import MotifCounting
    from repro.core.engine import KaleidoEngine

    engine = KaleidoEngine(
        paper_graph, storage_mode="spill-last", spill_dir=str(tmp_path)
    )
    try:
        result = engine.run(MotifCounting(3))
    finally:
        engine.close()
    plan = result.extra["io_plan"]
    assert plan is not None
    assert plan["part_entries"] >= 1 << 12
    assert plan["prefetch_depth"] >= 1
    assert plan["source"] in ("measured", "default", "fixed")
