"""Frequent subgraph mining over a labeled citation graph.

CiteSeer-style scenario from the paper's Table 1: papers are vertices
labeled with their area; citations are edges.  k-FSM finds the citation
patterns (e.g. "AI paper citing two DB papers") that occur with MNI
support above a threshold, and the support sweep shows the paper's
Figure-11 behaviour: runtime rises to a peak and then falls as the support
grows, because Kaleido prunes patterns from the counting candidate set as
soon as they reach the threshold.

Usage::

    python examples/frequent_citation_patterns.py
"""

from __future__ import annotations

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.graph import datasets

AREAS = ["AI", "DB", "IR", "ML", "HCI", "Agents"]


def describe(pattern) -> str:
    labels = " - ".join(AREAS[l % len(AREAS)] for l in pattern.labels)
    return f"{labels}  ({pattern.num_edges} citations)"


def main() -> None:
    graph = datasets.load("citeseer", "bench")
    print(f"Citation graph: {graph}\n")

    # Mine 3-FSM (2-edge patterns) at a moderate support.
    support = 20
    result = KaleidoEngine(graph).run(
        FrequentSubgraphMining(num_edges=2, support=support)
    )
    print(f"Frequent 2-citation patterns at support >= {support}: "
          f"{len(result.value)}")
    top = sorted(result.value.items(), key=lambda kv: -kv[1])[:8]
    for phash, sup in top:
        pattern = result.value.patterns.get(phash)
        if pattern is not None:
            print(f"  support>={sup:<5} {describe(pattern)}")
    print()

    # Support sweep: the Figure-11 non-monotone runtime curve.
    print("Support sweep (3-FSM):")
    print(f"  {'support':>8} {'patterns':>9} {'runtime (s)':>12} {'peak MB':>9}")
    for sweep_support in (2, 5, 10, 20, 50, 100, 200):
        res = KaleidoEngine(graph).run(
            FrequentSubgraphMining(num_edges=2, support=sweep_support)
        )
        print(
            f"  {sweep_support:>8} {len(res.value):>9} "
            f"{res.wall_seconds:>12.3f} {res.peak_memory_bytes / 1e6:>9.2f}"
        )
    print("\nRuntime peaks at a middle support: low supports freeze pattern")
    print("counters early (threshold reached fast); very high supports prune")
    print("almost every edge during Init.")


if __name__ == "__main__":
    main()
