"""Plain-text table / series formatting for benchmark output.

The benchmark files print the same rows and series the paper's tables and
figures report, so EXPERIMENTS.md can be filled by copy-paste from a
benchmark run.
"""

from __future__ import annotations

from .record import RunRecord, geomean

__all__ = ["format_table", "format_series", "comparison_table", "geomean_block"]


def format_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)


def format_series(
    name: str, points: list[tuple[float, float]], x_label: str, y_label: str
) -> str:
    """A plottable (x, y) series as text, with a crude ASCII sparkline."""
    if not points:
        return f"{name}: (empty)"
    ys = [y for _, y in points]
    lo, hi = min(ys), max(ys)
    blocks = "▁▂▃▄▅▆▇█"
    if hi > lo:
        spark = "".join(blocks[int((y - lo) / (hi - lo) * 7)] for y in ys)
    else:
        spark = blocks[0] * len(ys)
    rows = " ".join(f"({x:.3g},{y:.3g})" for x, y in points)
    return f"{name} [{x_label} -> {y_label}]\n  {spark}\n  {rows}"


def comparison_table(records: list[RunRecord], title: str) -> str:
    """Table 2 style: one row per (app, dataset, options), one time column
    per system, plus derived speedups vs kaleido."""
    systems: list[str] = []
    for record in records:
        if record.system not in systems:
            systems.append(record.system)
    by_key: dict[tuple, dict[str, RunRecord]] = {}
    for record in records:
        by_key.setdefault(record.key(), {})[record.system] = record
    headers = ["App", "Dataset", "Options"] + [f"{s} (s)" for s in systems] + [
        f"{s}/kaleido" for s in systems if s != "kaleido"
    ]
    rows = []
    for key in sorted(by_key):
        cells = [key[0], key[1], key[2]]
        group = by_key[key]
        for system in systems:
            record = group.get(system)
            cells.append(f"{record.seconds:.3f}" if record else "-")
        base = group.get("kaleido")
        for system in systems:
            if system == "kaleido":
                continue
            record = group.get(system)
            if record and base and base.seconds > 0:
                cells.append(f"{record.seconds / base.seconds:.1f}x")
            else:
                cells.append("-")
        rows.append(cells)
    return format_table(headers, rows, title=title)


def geomean_block(records: list[RunRecord], against: str = "kaleido") -> str:
    """GeoMean speedups of `against` vs every other system (paper headline)."""
    by_key: dict[tuple, dict[str, RunRecord]] = {}
    for record in records:
        by_key.setdefault(record.key(), {})[record.system] = record
    ratios: dict[str, list[float]] = {}
    memory: dict[str, list[float]] = {}
    for group in by_key.values():
        base = group.get(against)
        if base is None:
            continue
        for system, record in group.items():
            if system == against or base.seconds <= 0:
                continue
            ratios.setdefault(system, []).append(record.seconds / base.seconds)
            if base.memory_bytes > 0:
                memory.setdefault(system, []).append(
                    record.memory_bytes / base.memory_bytes
                )
    lines = []
    for system in sorted(ratios):
        lines.append(
            f"GeoMean speedup of {against} vs {system}: "
            f"{geomean(ratios[system]):.1f}x over {len(ratios[system])} cells"
        )
    for system in sorted(memory):
        lines.append(
            f"GeoMean memory reduction of {against} vs {system}: "
            f"{geomean(memory[system]):.1f}x"
        )
    return "\n".join(lines)
