"""Benchmark harness: run records, reporting, shared workloads."""

from .export import read_records_csv, write_records_csv
from .record import RunRecord, geomean, speedup
from .report import comparison_table, format_series, format_table, geomean_block
from .workloads import (
    PROFILE,
    TABLE2_GRID,
    bench_graph,
    digest,
    run_arabesque,
    run_kaleido,
    run_rstream,
)

__all__ = [
    "RunRecord",
    "geomean",
    "speedup",
    "format_table",
    "format_series",
    "comparison_table",
    "geomean_block",
    "PROFILE",
    "TABLE2_GRID",
    "bench_graph",
    "digest",
    "run_kaleido",
    "run_arabesque",
    "run_rstream",
    "write_records_csv",
    "read_records_csv",
]
