"""Query-tier request/response types and the app registry.

A :class:`QueryRequest` is the service's unit of work: *what* to mine
(application + ``k`` + params), *over what* (a named dataset or an
in-process :class:`~repro.graph.graph.Graph`), *for whom* (the tenant)
and *within what* (the :class:`QueryBudget`).  The service answers with
a :class:`QueryResult` carrying the route taken (GREEN / YELLOW / RED),
the cache outcome and the mined value.

Everything here is plain data — no engine imports — so the wire
protocol (:mod:`repro.service.protocol`) and the scheduler share one
vocabulary without a dependency cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..apps import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    MotifCounting,
    TriangleCounting,
)
from ..core.api import MiningApplication, PatternMap
from ..graph.graph import Graph

__all__ = [
    "APP_NAMES",
    "APPROXIMABLE_APPS",
    "QueryBudget",
    "QueryRequest",
    "QueryResult",
    "Route",
    "build_app",
]

#: Application names the query tier accepts (the CLI's vocabulary).
APP_NAMES = ("tc", "motif", "clique", "fsm")

#: Applications with a cheap approximate mode the router may degrade to.
APPROXIMABLE_APPS = frozenset({"motif"})


class Route(str, Enum):
    """How a query was served.

    ``GREEN``
        A result-cache hit: served instantly, no mining at all.
    ``YELLOW``
        The cheap path: sampling-based approximation
        (:mod:`repro.apps.approximate`) for interactive-latency answers
        — either requested outright (``mode="approximate"``) or a
        budget-exceeded degradation.
    ``RED``
        A full out-of-core engine run on an engine session.
    """

    GREEN = "GREEN"
    YELLOW = "YELLOW"
    RED = "RED"


@dataclass(frozen=True)
class QueryBudget:
    """Per-query cost bound and degradation policy.

    ``max_embeddings`` caps the exploration size: when the router's
    cost estimate exceeds it, the query degrades to the approximate
    path (if ``allow_degraded`` and the app supports it) or is rejected
    with :class:`~repro.errors.QueryRejectedError` before any work
    starts.  The cap is also threaded into the engine's own
    ``max_embeddings`` guard on RED runs, so an estimate that was too
    optimistic still cannot run away.  ``samples`` sizes the degraded
    approximate run.
    """

    max_embeddings: int | None = None
    allow_degraded: bool = True
    samples: int = 400

    def to_json(self) -> dict[str, Any]:
        return {
            "max_embeddings": self.max_embeddings,
            "allow_degraded": self.allow_degraded,
            "samples": self.samples,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "QueryBudget":
        return cls(
            max_embeddings=payload.get("max_embeddings"),
            allow_degraded=bool(payload.get("allow_degraded", True)),
            samples=int(payload.get("samples", 400)),
        )


@dataclass
class QueryRequest:
    """One tenant's mining query.

    The graph is named either by ``dataset``/``profile`` (resolved and
    cached by the service) or passed directly as ``graph`` (in-process
    callers).  ``params`` carries app-specific knobs — FSM's ``edges``
    and ``support``, the approximate mode's ``samples``/``seed`` — and
    participates in the cache key, canonicalised by :meth:`cache_params`.
    """

    app: str
    k: int = 3
    params: Mapping[str, Any] = field(default_factory=dict)
    dataset: str | None = None
    profile: str = "bench"
    graph: Graph | None = None
    tenant: str = "default"
    budget: QueryBudget | None = None
    mode: str = "exact"  # "exact" | "approximate"

    def __post_init__(self) -> None:
        if self.app not in APP_NAMES:
            raise ValueError(f"unknown app {self.app!r} (choose from {APP_NAMES})")
        if self.mode not in ("exact", "approximate"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode == "approximate" and self.app not in APPROXIMABLE_APPS:
            raise ValueError(f"app {self.app!r} has no approximate mode")
        if self.graph is None and self.dataset is None:
            raise ValueError("a query needs either a dataset name or a graph")

    def cache_params(self) -> tuple:
        """Canonical, hashable form of everything that shapes the result.

        Sorted ``params`` items plus the mode (an approximate answer
        must never be served where an exact one was asked for, and
        vice versa) and, for approximate queries, the sample budget —
        different sample counts are different results.
        """
        items = tuple(sorted((str(k), v) for k, v in self.params.items()))
        extra: tuple = (self.mode,)
        if self.mode == "approximate" and self.budget is not None:
            extra += (self.budget.samples,)
        return items + extra


@dataclass
class QueryResult:
    """What the service answered one query with."""

    request_id: int
    tenant: str
    app: str
    route: Route
    cache_hit: bool
    value: Any
    pattern_map: PatternMap
    wall_seconds: float
    #: For YELLOW answers: the 95% CI half-widths per pattern hash.
    error_bars: dict[int, float] | None = None
    #: Extra engine facts for RED runs (executor, levels, peak bytes).
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """JSON-friendly projection for the wire protocol."""
        payload: dict[str, Any] = {
            "id": self.request_id,
            "status": "ok",
            "tenant": self.tenant,
            "app": self.app,
            "route": self.route.value,
            "cache": "hit" if self.cache_hit else "miss",
            "wall_seconds": self.wall_seconds,
            "patterns": {str(k): v for k, v in sorted(self.pattern_map.items())},
        }
        if self.error_bars is not None:
            payload["error_bars"] = {
                str(k): v for k, v in sorted(self.error_bars.items())
            }
        if self.extra:
            payload["extra"] = self.extra
        return payload


def build_app(app: str, k: int, params: Mapping[str, Any]) -> MiningApplication:
    """Instantiate the named mining application for one query."""
    if app == "tc":
        return TriangleCounting()
    if app == "motif":
        return MotifCounting(k)
    if app == "clique":
        return CliqueDiscovery(k)
    if app == "fsm":
        return FrequentSubgraphMining(
            num_edges=int(params.get("edges", 2)),
            support=int(params.get("support", 5)),
            exact_mni=bool(params.get("exact_mni", False)),
        )
    raise ValueError(f"unknown app {app!r}")
