"""Property-based tests for the storage layer."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage import (
    PartStore,
    SlidingWindowReader,
    SpilledLevel,
    WritingQueue,
    load_cse,
    save_cse,
)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(
    chunks=st.lists(
        st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=0, max_size=50),
        min_size=0,
        max_size=8,
    )
)
@_slow
def test_part_roundtrip_any_chunking(tmp_path_factory, chunks):
    store = PartStore(str(tmp_path_factory.mktemp("parts")))
    handles = [store.save(np.asarray(c, dtype=np.int32)) for c in chunks]
    flat = [x for c in chunks for x in c]
    read = [int(x) for h in handles for x in store.load(h)]
    assert read == flat
    store.close()


@given(
    chunks=st.lists(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
        min_size=1,
        max_size=6,
    ),
    prefetch=st.booleans(),
)
@_slow
def test_window_reader_preserves_order(tmp_path_factory, chunks, prefetch):
    store = PartStore(str(tmp_path_factory.mktemp("win")))
    handles = [store.save(np.asarray(c, dtype=np.int32)) for c in chunks]
    reader = SlidingWindowReader(store, handles, prefetch=prefetch)
    assert [c.tolist() for c in reader] == chunks
    store.close()


@given(
    arrays=st.lists(
        st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=40),
        min_size=0,
        max_size=10,
    ),
    synchronous=st.booleans(),
)
@_slow
def test_writing_queue_order(tmp_path_factory, arrays, synchronous):
    store = PartStore(str(tmp_path_factory.mktemp("q")))
    with WritingQueue(store, synchronous=synchronous) as queue:
        for arr in arrays:
            queue.submit(np.asarray(arr, dtype=np.int32))
        handles = queue.flush()
    assert [store.load(h).tolist() for h in handles] == arrays
    store.close()


@given(
    counts=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20)
)
@_slow
def test_spilled_level_off_consistency(tmp_path_factory, counts):
    """A spilled level built from arbitrary child counts walks correctly."""
    store = PartStore(str(tmp_path_factory.mktemp("lvl")))
    total = sum(counts)
    vert = np.arange(total, dtype=np.int32)
    off = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    # Split vert into two arbitrary parts.
    cut = total // 2
    handles = [store.save(vert[:cut]), store.save(vert[cut:])]
    level = SpilledLevel(store, handles, off, prefetch=False)
    assert level.num_embeddings == total
    assert np.array_equal(level.vert_array(), vert)
    store.close()


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=4)
)
@_slow
def test_checkpoint_roundtrip_arbitrary_shapes(tmp_path_factory, sizes):
    """Synthesise a structurally-valid CSE of arbitrary level sizes and
    round-trip it through the checkpoint."""
    from repro.core import CSE, InMemoryLevel

    rng = np.random.default_rng(0)
    cse = CSE(np.arange(sizes[0], dtype=np.int32))
    for size in sizes[1:]:
        parent = cse.size()
        cuts = np.sort(rng.integers(0, size + 1, size=parent - 1)) if parent > 1 else np.zeros(0, dtype=np.int64)
        off = np.concatenate([[0], cuts, [size]]).astype(np.int64)
        cse.append_level(InMemoryLevel(rng.integers(0, 100, size=size), off))
    directory = tmp_path_factory.mktemp("ck")
    save_cse(cse, directory)
    loaded = load_cse(directory)
    assert loaded.depth == cse.depth
    for a, b in zip(loaded.levels, cse.levels):
        assert np.array_equal(a.vert_array(), b.vert_array())
