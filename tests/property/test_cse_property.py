"""Property-based tests on CSE structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CSE
from repro.core.explore import expand_vertex_level
from repro.graph import from_edge_list


@st.composite
def graph_and_depth(draw, max_n=12):
    n = draw(st.integers(min_value=3, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=2, max_size=min(20, len(possible)), unique=True)
    )
    depth = draw(st.integers(min_value=1, max_value=3))
    return from_edge_list(edges), depth


@given(graph_and_depth())
@settings(max_examples=50, deadline=None)
def test_random_access_matches_walk(case):
    """embedding_at(level, pos) == the walk's pos-th embedding, always."""
    graph, depth = case
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    top = cse.depth - 1
    for pos, emb in cse.iter_embeddings():
        assert cse.embedding_at(top, pos) == emb


@given(graph_and_depth())
@settings(max_examples=50, deadline=None)
def test_off_arrays_consistent(case):
    """off arrays are monotone, span the level, and lengths interlock:
    len(vert_l) == len(off_{l+1}) - 1 (Section 3.1.1)."""
    graph, depth = case
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    for l in range(1, cse.depth):
        off = cse.levels[l].off_array()
        assert off is not None
        assert off[0] == 0
        assert off[-1] == cse.levels[l].num_embeddings
        assert np.all(np.diff(off) >= 0)
        assert off.shape[0] == cse.levels[l - 1].num_embeddings + 1


@given(graph_and_depth())
@settings(max_examples=50, deadline=None)
def test_embeddings_strictly_increase_prefix_rule(case):
    """Every embedding starts at its minimum vertex (Definition 2 (i))."""
    graph, depth = case
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    for _, emb in cse.iter_embeddings():
        assert emb[0] == min(emb)
        assert len(set(emb)) == len(emb)


@given(graph_and_depth(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_filter_then_walk_consistent(case, rnd):
    """filter_top_level keeps exactly the masked embeddings, in order."""
    graph, depth = case
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    before = [emb for _, emb in cse.iter_embeddings()]
    keep = np.array([rnd.random() < 0.5 for _ in before], dtype=bool)
    cse.filter_top_level(keep)
    after = [emb for _, emb in cse.iter_embeddings()]
    assert after == [e for e, k in zip(before, keep) if k]


@given(graph_and_depth())
@settings(max_examples=30, deadline=None)
def test_bytes_are_4_per_vert_8_per_off(case):
    graph, depth = case
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    expected = 0
    for l, level in enumerate(cse.levels):
        expected += 4 * level.num_embeddings
        if l > 0:
            expected += 8 * (cse.levels[l - 1].num_embeddings + 1)
    assert cse.nbytes_in_memory == expected
