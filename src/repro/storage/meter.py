"""Memory accounting and budgets.

Python's RSS is dominated by the interpreter, so the reproduction accounts
memory at the data-structure level instead (see DESIGN.md substitutions):
every engine registers the live size of each structure it owns under a
name, and the meter tracks the current and peak sum.  The
:class:`MemoryBudget` reproduces the paper's cgroup experiments (Figures
15/16): when a projected allocation exceeds the limit, the engine must
spill to disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["MemoryMeter", "MemoryBudget", "IOStats", "IOEvent"]


class MemoryMeter:
    """Tracks named byte counts; exposes the current and peak totals."""

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}
        self.peak_bytes = 0

    def set(self, name: str, nbytes: int) -> None:
        """Set the live size of structure ``name`` (overwrites)."""
        if nbytes < 0:
            raise ValueError(f"negative size for {name!r}: {nbytes}")
        self._sizes[name] = int(nbytes)
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def add(self, name: str, delta: int) -> None:
        """Adjust the live size of ``name`` by ``delta`` bytes."""
        self.set(name, self._sizes.get(name, 0) + delta)

    def release(self, name: str) -> None:
        """Forget structure ``name``."""
        self._sizes.pop(name, None)

    @property
    def current_bytes(self) -> int:
        return sum(self._sizes.values())

    def snapshot(self) -> dict[str, int]:
        """Current per-structure sizes (copy)."""
        return dict(self._sizes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mb = self.current_bytes / 1e6
        peak = self.peak_bytes / 1e6
        return f"MemoryMeter(current={mb:.2f}MB, peak={peak:.2f}MB)"


class MemoryBudget:
    """A byte limit for intermediate data (the paper's cgroup cap).

    ``limit_bytes=None`` means unlimited (pure in-memory operation).
    """

    def __init__(self, limit_bytes: int | None = None) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive or None")
        self.limit_bytes = limit_bytes

    def fits(self, current_bytes: int, extra_bytes: int = 0) -> bool:
        """Whether ``current + extra`` stays within the limit."""
        if self.limit_bytes is None:
            return True
        return current_bytes + extra_bytes <= self.limit_bytes

    def headroom(self, current_bytes: int) -> int | None:
        """Remaining bytes before the limit, or None when unlimited."""
        if self.limit_bytes is None:
            return None
        return max(0, self.limit_bytes - current_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.limit_bytes is None:
            return "MemoryBudget(unlimited)"
        return f"MemoryBudget({self.limit_bytes / 1e6:.1f}MB)"


@dataclass(frozen=True)
class IOEvent:
    """One disk transfer, timestamped relative to the stats' epoch."""

    at_seconds: float
    kind: str  # "read" | "write"
    nbytes: int
    seconds: float


@dataclass
class IOStats:
    """Aggregated disk traffic with an event log for rate plots (Fig. 15)."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_seconds: float = 0.0
    write_seconds: float = 0.0
    #: Part-file deletions attempted and how many failed — a non-zero
    #: failure count means spill files may have leaked on disk.
    deletes: int = 0
    failed_deletes: int = 0
    #: Transient-fault retries performed (each one slept a backoff).
    retries: int = 0
    events: list[IOEvent] = field(default_factory=list)
    epoch: float = field(default_factory=time.perf_counter)

    def record(self, kind: str, nbytes: int, seconds: float) -> None:
        if kind == "read":
            self.bytes_read += nbytes
            self.read_seconds += seconds
        elif kind == "write":
            self.bytes_written += nbytes
            self.write_seconds += seconds
        else:
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        self.events.append(
            IOEvent(time.perf_counter() - self.epoch, kind, nbytes, seconds)
        )

    def record_delete(self, ok: bool) -> None:
        """Count one part-file deletion attempt."""
        self.deletes += 1
        if not ok:
            self.failed_deletes += 1

    def record_retry(self) -> None:
        """Count one transient-fault retry."""
        self.retries += 1

    def merge(self, other: "IOStats") -> None:
        """Fold another stats object into this one (queues keep their own).

        Event timestamps are relative to each object's epoch, so the
        other's events are rebased onto this epoch — without that shift,
        a stats object created later (smaller elapsed clock) would drag
        its events toward t=0 and corrupt the merged rate series.
        """
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_seconds += other.read_seconds
        self.write_seconds += other.write_seconds
        self.deletes += other.deletes
        self.failed_deletes += other.failed_deletes
        self.retries += other.retries
        shift = other.epoch - self.epoch
        self.events.extend(
            IOEvent(e.at_seconds + shift, e.kind, e.nbytes, e.seconds)
            for e in other.events
        )

    def rate_series(self, kind: str, bins: int = 20) -> list[tuple[float, float]]:
        """(time, MB/s) series over equal time bins, for Figure-15 plots."""
        relevant = [e for e in self.events if e.kind == kind]
        if not relevant:
            return []
        horizon = max(e.at_seconds for e in relevant) + 1e-9
        width = horizon / bins
        totals = [0.0] * bins
        for event in relevant:
            slot = min(bins - 1, int(event.at_seconds / width))
            totals[slot] += event.nbytes
        return [
            ((i + 0.5) * width, totals[i] / width / 1e6) for i in range(bins)
        ]
