"""Per-function control-flow approximation for lifecycle rules.

R007 asks a path question — "can this acquisition reach the function
exit without passing a release?" — which a syntactic walk cannot
answer.  This module builds a deliberately small CFG over a function
body:

* nodes are the function's **statements** (nested function bodies are
  opaque: they define, they do not flow);
* ``if``/``while``/``for``/``match`` fan out to their branch entries;
* ``return``/``raise`` route through enclosing ``finally`` bodies and
  then to a single :data:`EXIT` sentinel;
* exception edges are modelled **only** for statements directly inside
  a ``try`` body (to the handlers and the ``finally``) — modelling
  "anything can raise anywhere" would drown the signal, and the
  project's own fault seams are all wrapped in ``try``.

Exceptional successors are kept separate from normal ones so a caller
can ignore the may-raise edge out of the statement it starts from: a
failed acquisition leaves nothing to release.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["EXIT", "FunctionCFG", "build_cfg", "leaks_to_exit"]


class _Exit:
    """Singleton sentinel for the function's exit point."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<exit>"


EXIT = _Exit()

#: A CFG point: a statement node or the EXIT sentinel.
Point = object


@dataclass
class FunctionCFG:
    """Successor maps over a function body's statements."""

    #: Entry points of the body (the first statement, normally).
    entries: tuple[Point, ...] = ()
    #: Normal-flow successors, keyed by ``id(stmt)``.
    succ: dict[int, set[Point]] = field(default_factory=dict)
    #: Exceptional successors (may-raise edges inside ``try`` bodies).
    exc: dict[int, set[Point]] = field(default_factory=dict)

    def successors(self, stmt: ast.stmt, *, include_exceptional: bool = True) -> set[Point]:
        out = set(self.succ.get(id(stmt), ()))
        if include_exceptional:
            out |= self.exc.get(id(stmt), set())
        return out


@dataclass
class _Loop:
    break_follow: frozenset[Point]
    continue_target: frozenset[Point]


class _Builder:
    def __init__(self) -> None:
        self.cfg = FunctionCFG()

    # -- helpers -------------------------------------------------------
    def _normal(self, stmt: ast.stmt, targets: Iterable[Point]) -> None:
        self.cfg.succ.setdefault(id(stmt), set()).update(targets)

    def _exceptional(self, stmt: ast.stmt, targets: Iterable[Point]) -> None:
        self.cfg.exc.setdefault(id(stmt), set()).update(targets)

    # -- construction --------------------------------------------------
    def sequence(
        self,
        stmts: Sequence[ast.stmt],
        follow: frozenset[Point],
        loops: tuple[_Loop, ...],
        finallies: tuple[frozenset[Point], ...],
    ) -> frozenset[Point]:
        """Wire a statement list; returns its entry point set."""
        entry = follow
        for stmt in reversed(stmts):
            entry = self.statement(stmt, entry, loops, finallies)
        return entry

    def statement(
        self,
        stmt: ast.stmt,
        follow: frozenset[Point],
        loops: tuple[_Loop, ...],
        finallies: tuple[frozenset[Point], ...],
    ) -> frozenset[Point]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            # Abrupt exit routes through the innermost finally (whose
            # own wiring continues outward), else straight out.
            self._normal(stmt, finallies[-1] if finallies else {EXIT})
            return frozenset({stmt})
        if isinstance(stmt, ast.Break):
            self._normal(stmt, loops[-1].break_follow if loops else {EXIT})
            return frozenset({stmt})
        if isinstance(stmt, ast.Continue):
            self._normal(stmt, loops[-1].continue_target if loops else {EXIT})
            return frozenset({stmt})
        if isinstance(stmt, ast.If):
            body = self.sequence(stmt.body, follow, loops, finallies)
            orelse = self.sequence(stmt.orelse, follow, loops, finallies)
            self._normal(stmt, body | orelse)
            return frozenset({stmt})
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = frozenset({stmt})
            inner = loops + (_Loop(break_follow=follow, continue_target=header),)
            body = self.sequence(stmt.body, header, inner, finallies)
            out = self.sequence(stmt.orelse, follow, loops, finallies)
            self._normal(stmt, body | out)
            return header
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body = self.sequence(stmt.body, follow, loops, finallies)
            self._normal(stmt, body)
            return frozenset({stmt})
        if isinstance(stmt, ast.Try):
            return self._try(stmt, follow, loops, finallies)
        if isinstance(stmt, ast.Match):
            entries: set[Point] = set(follow)  # subject may match no case
            for case in stmt.cases:
                entries |= self.sequence(case.body, follow, loops, finallies)
            self._normal(stmt, entries)
            return frozenset({stmt})
        # Simple statement (incl. nested def/class: they do not flow).
        self._normal(stmt, follow)
        return frozenset({stmt})

    def _try(
        self,
        stmt: ast.Try,
        follow: frozenset[Point],
        loops: tuple[_Loop, ...],
        finallies: tuple[frozenset[Point], ...],
    ) -> frozenset[Point]:
        if stmt.finalbody:
            # The finally body runs on both the normal and the abrupt
            # path; over-approximate by letting its tail continue to
            # either the statement's follow or the next abrupt target.
            abrupt = finallies[-1] if finallies else frozenset({EXIT})
            fin_entry = self.sequence(
                stmt.finalbody, follow | abrupt, loops, finallies
            )
            inner_finallies = finallies + (fin_entry,)
            after = fin_entry
        else:
            fin_entry = frozenset()
            inner_finallies = finallies
            after = follow

        handler_entries: set[Point] = set()
        for handler in stmt.handlers:
            handler_entries |= self.sequence(handler.body, after, loops, inner_finallies)

        orelse = (
            self.sequence(stmt.orelse, after, loops, inner_finallies)
            if stmt.orelse
            else after
        )
        body_entry = self.sequence(stmt.body, orelse, loops, inner_finallies)

        # May-raise edges: each statement directly in the try body can
        # jump to the handlers / the finally.
        raise_targets = frozenset(handler_entries) | fin_entry
        if raise_targets:
            for body_stmt in stmt.body:
                self._exceptional(body_stmt, raise_targets)
        return body_entry


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionCFG:
    """Build the statement-level CFG for one function body."""
    builder = _Builder()
    entries = builder.sequence(func.body, frozenset({EXIT}), (), ())
    builder.cfg.entries = tuple(entries)
    return builder.cfg


def leaks_to_exit(
    cfg: FunctionCFG, start: ast.stmt, releases: Iterable[ast.stmt]
) -> bool:
    """Whether ``start`` can reach :data:`EXIT` without hitting a release.

    Release statements block path exploration; the exceptional edge out
    of ``start`` itself is ignored (a failed acquisition leaves nothing
    behind to release).
    """
    blocked = {id(stmt) for stmt in releases}
    frontier: list[Point] = list(cfg.succ.get(id(start), ()))
    seen: set[int] = {id(start)}
    while frontier:
        point = frontier.pop()
        if point is EXIT:
            return True
        if id(point) in seen or id(point) in blocked:
            continue
        seen.add(id(point))
        frontier.extend(cfg.succ.get(id(point), ()))
        frontier.extend(cfg.exc.get(id(point), ()))
    return False
