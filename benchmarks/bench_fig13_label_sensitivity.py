"""Figure 13: label-count sensitivity of the two isomorphism checkers.

The Patent topology is mined under its 7-label (category) and 37-label
(sub-category) assignments, with 3-FSM and 4-FSM across supports, under
both checkers.  Paper shape: both get slower with more labels, but bliss
is *more* sensitive to the label count than Kaleido (it needs a larger
hash space / deeper refinement as label diversity grows).
"""

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.baselines import BlissLikeHasher
from repro.bench import format_table, geomean
from repro.core import PatternHasher
from repro.graph import datasets

from conftest import run_once

PROFILE13 = "tiny"
SUPPORTS_3FSM = [3, 5, 8, 12]
SUPPORTS_4FSM = [4, 6]


def _run(graph, num_edges, support, hasher):
    app = FrequentSubgraphMining(
        num_edges=num_edges, support=support, hash_every_embedding=True
    )
    with KaleidoEngine(graph, hasher=hasher) as engine:
        result = engine.run(app)
        return result, engine.hasher.nbytes


@pytest.mark.benchmark(group="fig13")
def test_fig13_label_sensitivity(benchmark, emit):
    rows = []
    sensitivity: dict[str, dict[int, float]] = {"kaleido": {}, "bliss": {}}

    def run_grid():
        base = datasets.load("patent", PROFILE13)
        graphs = {7: datasets.patent_with_labels(7, PROFILE13), 37: base}
        for labels, graph in graphs.items():
            for num_edges, supports in ((2, SUPPORTS_3FSM), (3, SUPPORTS_4FSM)):
                for support in supports:
                    ka, ka_mem = _run(graph, num_edges, support, PatternHasher(cache=False))
                    bl, bl_mem = _run(graph, num_edges, support, BlissLikeHasher(cache=False))
                    assert sorted(ka.value.values()) == sorted(bl.value.values())
                    rows.append(
                        [
                            f"{num_edges + 1}-FSM",
                            f"PA-{labels}",
                            str(support),
                            f"{ka.wall_seconds:.3f}",
                            f"{bl.wall_seconds:.3f}",
                            f"{bl.wall_seconds / max(ka.wall_seconds, 1e-9):.2f}x",
                            str(len(ka.value)),
                        ]
                    )
                    sensitivity["kaleido"].setdefault(labels, 0.0)
                    sensitivity["bliss"].setdefault(labels, 0.0)
                    sensitivity["kaleido"][labels] += ka.wall_seconds
                    sensitivity["bliss"][labels] += bl.wall_seconds
        return rows

    run_once(benchmark, run_grid)
    table = format_table(
        ["App", "Labeling", "Support", "Kaleido (s)", "bliss-like (s)",
         "speedup", "frequent"],
        rows,
        title=f"Figure 13 — label sensitivity, Patent topology (profile: {PROFILE13})",
    )
    ka_ratio = sensitivity["kaleido"][37] / max(sensitivity["kaleido"][7], 1e-9)
    bl_ratio = sensitivity["bliss"][37] / max(sensitivity["bliss"][7], 1e-9)
    summary = (
        f"\nTotal-time growth 7 -> 37 labels: Kaleido {ka_ratio:.2f}x, "
        f"bliss-like {bl_ratio:.2f}x (paper: bliss more label-sensitive)"
    )
    emit(table + summary, name="fig13_label_sensitivity")
