"""Unit tests for MNI support counting."""

from repro.apps.mni import MNIDomains, merge_domains


def test_support_is_min_domain():
    dom = MNIDomains(2)
    dom.add((1, 2), None)
    dom.add((1, 3), None)
    dom.add((4, 3), None)
    assert dom.domains[0] == {1, 4}
    assert dom.domains[1] == {2, 3}
    assert dom.support == 2


def test_empty_domains():
    assert MNIDomains(0).support == 0
    assert MNIDomains(3).support == 0


def test_short_circuit_freezes():
    dom = MNIDomains(2)
    dom.add((1, 10), threshold=2)
    assert not dom.frozen
    dom.add((2, 11), threshold=2)
    assert dom.frozen
    dom.add((3, 12), threshold=2)  # ignored
    assert dom.support == 2
    assert 3 not in dom.domains[0]


def test_exact_mode_never_freezes():
    dom = MNIDomains(1)
    for i in range(10):
        dom.add((i,), None)
    assert not dom.frozen
    assert dom.support == 10


def test_merge_unions():
    a, b = MNIDomains(2), MNIDomains(2)
    a.add((1, 2), None)
    b.add((3, 4), None)
    merge_domains(a, b, None)
    assert a.domains[0] == {1, 3}
    assert a.support == 2


def test_merge_respects_threshold():
    a, b = MNIDomains(1), MNIDomains(1)
    a.add((1,), 2)
    b.add((2,), 2)
    merge_domains(a, b, 2)
    assert a.frozen
    c = MNIDomains(1)
    c.add((9,), 2)
    merge_domains(a, c, 2)
    assert 9 not in a.domains[0]


def test_merge_frozen_other_freezes():
    a, b = MNIDomains(1), MNIDomains(1)
    b.add((1,), 1)
    assert b.frozen
    merge_domains(a, b, 1)
    assert a.frozen


def test_nbytes_grows():
    dom = MNIDomains(2)
    before = dom.nbytes
    dom.add((1, 2), None)
    assert dom.nbytes > before
