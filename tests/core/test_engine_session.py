"""KaleidoEngine as a reusable session: repeat runs, shared resources."""

import pytest

from repro.apps import MotifCounting, TriangleCounting
from repro.core.engine import KaleidoEngine
from repro.core.eigenhash import PatternHasher
from repro.core.executor import ThreadedExecutor
from repro.errors import PlanError


def test_run_many_times_same_results(paper_graph):
    engine = KaleidoEngine(paper_graph)
    first = engine.run(TriangleCounting())
    second = engine.run(TriangleCounting())
    third = engine.run(MotifCounting(3))
    assert dict(first.pattern_map) == dict(second.pattern_map)
    assert engine.runs_completed == 3
    assert third.value  # a different app on the same session works


def test_edge_index_built_once_per_session(paper_graph):
    from repro.apps import FrequentSubgraphMining

    engine = KaleidoEngine(paper_graph)
    engine.run(FrequentSubgraphMining(num_edges=2, support=1))
    index = engine._edge_index
    assert index is not None  # edge-induced run built it
    engine.run(FrequentSubgraphMining(num_edges=2, support=1))
    assert engine._edge_index is index  # and the session reused it


def test_per_run_max_embeddings_override(paper_graph):
    engine = KaleidoEngine(paper_graph)
    with pytest.raises(PlanError, match="max_embeddings"):
        engine.run(MotifCounting(3), max_embeddings=1)
    # the override is per-run: the configured guard (None) is restored
    assert engine.planner.max_embeddings is None
    result = engine.run(MotifCounting(3))
    assert result.value


def test_sentinel_keeps_configured_guard(paper_graph):
    engine = KaleidoEngine(paper_graph, max_embeddings=1)
    with pytest.raises(PlanError):
        engine.run(MotifCounting(3))  # default -1 sentinel keeps the cap
    assert engine.planner.max_embeddings == 1


def test_caller_owned_executor_survives_engine_close(paper_graph):
    executor = ThreadedExecutor(max_workers=2)
    try:
        engine = KaleidoEngine(paper_graph, workers=2, executor=executor)
        engine.run(TriangleCounting())
        engine.close()
        # the engine did not reap the caller's pool
        report = executor.run([lambda: 42], workers=2)
        assert list(report.results) == [42]
    finally:
        executor.close()


def test_shared_hasher_across_engines(paper_graph):
    hasher = PatternHasher()
    a = KaleidoEngine(paper_graph, hasher=hasher)
    b = KaleidoEngine(paper_graph, hasher=hasher)
    a.run(MotifCounting(3))
    warm_hits = hasher.hits
    b.run(MotifCounting(3))
    assert hasher.hits > warm_hits  # second engine reused warm entries
