"""Figure 18: CPU-utilization traces with and without prediction.

The paper plots per-second CPU utilization of 4-FSM over Patent (supports
50k and 100k) for the prediction and non-prediction configurations; the
dotted boxes mark the exploration phase, where non-prediction shows deep
utilization valleys.  Here the work-stealing schedule replay provides the
trace (busy worker-time per bin / capacity).
"""

import tempfile

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.balance import utilization_series
from repro.bench import PROFILE, bench_graph, format_series

from conftest import run_once

WORKERS = 8
SUPPORTS = [20, 30]


def _trace(graph, support, use_prediction):
    with tempfile.TemporaryDirectory(prefix="fig18-") as tmp:
        with KaleidoEngine(
            graph,
            workers=WORKERS,
            # One part per worker, as on-disk parts are not stealable —
            # each thread owns the part it writes/loads (Figure 7); this
            # is precisely where the size prediction earns its keep.
            parts_per_worker=1,
            use_prediction=use_prediction,
            storage_mode="spill-last",
            spill_dir=tmp,
        ) as engine:
            result = engine.run(FrequentSubgraphMining(3, support))
    # The paper's dotted boxes mark the embedding exploration phase —
    # that is where the partitioning strategy acts, so the trace covers
    # the exploration schedules (aggregation parts are count-split in
    # both configurations).
    explore = [
        s
        for s, phase in zip(result.schedules, result.extra["schedule_phases"])
        if phase == "explore"
    ]
    series = utilization_series(explore, bins=30)
    average = (
        sum(u for _, u in series) / len(series) if series else 0.0
    )
    return series, average, result


@pytest.mark.benchmark(group="fig18")
def test_fig18_cpu_utilization(benchmark, emit):
    blocks = []
    averages = {}

    def run_cases():
        graph = bench_graph("patent")
        for support in SUPPORTS:
            for use_prediction in (True, False):
                series, average, _ = _trace(graph, support, use_prediction)
                mode = "prediction" if use_prediction else "non-prediction"
                averages[(support, use_prediction)] = average
                blocks.append(
                    format_series(
                        f"4-FSM(s={support}) {mode} "
                        f"(avg {average * 100:.0f}%)",
                        series,
                        "t (s)",
                        "utilization",
                    )
                )
        return averages

    run_once(benchmark, run_cases)
    emit(
        f"Figure 18 — CPU utilization traces, {WORKERS} workers "
        f"(profile: {PROFILE})\n\n" + "\n\n".join(blocks),
        name="fig18_cpu_utilization",
    )

    # Paper shape: prediction lifts average utilization for each support.
    for support in SUPPORTS:
        assert averages[(support, True)] >= averages[(support, False)] * 0.95, (
            support,
            averages,
        )
