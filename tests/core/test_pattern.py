"""Unit tests for the Pattern structure (Figure 5)."""

import numpy as np
import pytest

from repro.core import Pattern, triangle_index
from repro.errors import EmbeddingSizeError


def test_triangle_index_enumeration():
    # For k=4, the upper triangle has 6 cells in row-major order.
    cells = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    assert [triangle_index(i, j, 4) for i, j in cells] == list(range(6))


def test_triangle_index_validates():
    with pytest.raises(ValueError):
        triangle_index(2, 1, 4)
    with pytest.raises(ValueError):
        triangle_index(0, 4, 4)


def test_from_vertex_embedding_induced(paper_graph):
    p = Pattern.from_vertex_embedding(paper_graph, [2, 3, 5])
    assert p.num_edges == 3  # triangle: all induced edges included
    assert p.degree_sequence() == (2, 2, 2)


def test_from_vertex_embedding_chain(paper_graph):
    p = Pattern.from_vertex_embedding(paper_graph, [1, 2, 3])
    assert p.num_edges == 2
    assert sorted(p.degree_sequence()) == [1, 1, 2]


def test_from_vertex_embedding_labels(labeled_square):
    p = Pattern.from_vertex_embedding(labeled_square, [0, 1, 2])
    assert p.labels == (0, 1, 0)
    p2 = Pattern.from_vertex_embedding(labeled_square, [0, 1, 2], use_labels=False)
    assert p2.labels == (0, 0, 0)


def test_from_edge_embedding_not_induced(paper_graph):
    # Edge-induced pattern includes only the given edges, not the chord.
    p = Pattern.from_edge_embedding(paper_graph, [(2, 3), (3, 5)])
    assert p.num_edges == 2  # (2,5) edge exists in graph but is excluded


def test_from_adjacency_roundtrip():
    mat = [[0, 1, 1], [1, 0, 0], [1, 0, 0]]
    p = Pattern.from_adjacency([7, 8, 9], mat)
    assert np.array_equal(p.adjacency_matrix(), np.array(mat))
    assert p.labels == (7, 8, 9)


def test_has_edge_symmetric():
    p = Pattern.from_adjacency([0, 0, 0], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    assert p.has_edge(0, 1) and p.has_edge(1, 0)
    assert not p.has_edge(0, 2)
    assert not p.has_edge(1, 1)


def test_degree_sequence_matches_matrix():
    p = Pattern.from_adjacency([0] * 4, np.ones((4, 4)) - np.eye(4))
    assert p.degree_sequence() == (3, 3, 3, 3)
    assert p.num_edges == 6


def test_is_connected():
    chain = Pattern.from_adjacency([0] * 3, [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    assert chain.is_connected()
    split = Pattern.from_adjacency([0] * 3, [[0, 1, 0], [1, 0, 0], [0, 0, 0]])
    assert not split.is_connected()


def test_permute_preserves_structure():
    p = Pattern.from_adjacency([1, 2, 3], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    q = p.permute([2, 1, 0])
    assert q.labels == (3, 2, 1)
    assert q.degree_sequence() == (1, 2, 1)
    assert q.permute([2, 1, 0]) == p


def test_permute_validates():
    p = Pattern((0, 0), 1)
    with pytest.raises(ValueError):
        p.permute([0, 0])


def test_sorted_by_label_degree():
    p = Pattern.from_adjacency([2, 1, 1], [[0, 1, 1], [1, 0, 0], [1, 0, 0]])
    normalized, perm = p.sorted_by_label_degree()
    assert normalized.labels == (1, 1, 2)
    # Permutation maps embedding positions: perm[t] = original position.
    assert p.permute(perm) == normalized


def test_storage_size_matches_figure5():
    # Figure 5: a 5-vertex pattern needs a 10-bit bitmap and 5 label bytes.
    p = Pattern((0, 1, 2, 3, 4), 0)
    assert p.storage_bits == 10
    assert p.nbytes == 5 + 2


def test_check_eigenhash_size():
    small = Pattern((0,) * 8, 0)
    small.check_eigenhash_size()  # no raise
    big = Pattern((0,) * 9, 0)
    with pytest.raises(EmbeddingSizeError):
        big.check_eigenhash_size()


def test_patterns_hashable_and_frozen():
    p = Pattern((0, 1), 1)
    assert p == Pattern((0, 1), 1)
    assert hash(p) == hash(Pattern((0, 1), 1))
    with pytest.raises(AttributeError):
        p.bits = 2
