"""A bliss-like canonical-labeling isomorphism checker.

Bliss (Junttila & Kaski) canonicalises a labeled graph by building a
search tree: partition refinement (1-WL colour refinement) interleaved
with individualization branching; the canonical form is the minimum
relabeled adjacency over the tree's leaves.  This module implements that
algorithmic family in pure Python, *without* bliss's automorphism pruning
— it is the baseline Kaleido's EigenHash is compared against (Figure 12),
and the paper's point is precisely that the search tree allocates heavily
per call.

:class:`BlissLikeHasher` exposes the same interface as
:class:`repro.core.eigenhash.PatternHasher`, so a
:class:`~repro.core.engine.KaleidoEngine` can be constructed with either.
"""

from __future__ import annotations

from ..core.eigenhash import _stable_hash
from ..core.pattern import Pattern

__all__ = ["BlissLikeHasher", "canonical_form_search"]


def _refine(
    colors: list[int], adjacency: list[list[int]], alloc_counter: list[int]
) -> list[int]:
    """1-WL colour refinement to a stable partition."""
    n = len(colors)
    while True:
        signatures = []
        for v in range(n):
            neighbor_colors = sorted(colors[w] for w in adjacency[v])
            signatures.append((colors[v], tuple(neighbor_colors)))
        alloc_counter[0] += n  # one signature tuple per vertex per round
        ranking = {sig: rank for rank, sig in enumerate(sorted(set(signatures)))}
        new_colors = [ranking[sig] for sig in signatures]
        if new_colors == colors:
            return colors
        colors = new_colors


def canonical_form_search(
    pattern: Pattern,
) -> tuple[tuple[tuple[int, ...], int, tuple[int, ...]], int]:
    """Canonical ``(labels, bits)`` via individualization-refinement.

    Returns the canonical form and the number of search-tree node
    allocations performed (bliss's dominant cost per the paper).
    """
    k = pattern.num_vertices
    adjacency: list[list[int]] = [[] for _ in range(k)]
    for i in range(k):
        for j in range(i + 1, k):
            if pattern.has_edge(i, j):
                adjacency[i].append(j)
                adjacency[j].append(i)
    degrees = pattern.degree_sequence()
    initial = sorted(set(zip(pattern.labels, degrees)))
    rank = {key: r for r, key in enumerate(initial)}
    colors0 = [rank[(pattern.labels[v], degrees[v])] for v in range(k)]
    alloc_counter = [0]
    best: list[tuple[tuple[int, ...], int, tuple[int, ...]] | None] = [None]

    def leaf(colors: list[int]) -> None:
        # Discrete colouring: vertex with colour c goes to position c.
        perm = [0] * k
        for v, c in enumerate(colors):
            perm[c] = v
        candidate = pattern.permute(perm)
        key = (candidate.labels, candidate.bits, candidate.edge_labels or ())
        if best[0] is None or key < best[0]:
            best[0] = key

    def search(colors: list[int]) -> None:
        alloc_counter[0] += 1  # one tree node
        colors = _refine(list(colors), adjacency, alloc_counter)
        cells: dict[int, list[int]] = {}
        for v, c in enumerate(colors):
            cells.setdefault(c, []).append(v)
        target = None
        for c in sorted(cells):
            if len(cells[c]) > 1:
                target = cells[c]
                break
        if target is None:
            leaf(colors)
            return
        # Individualize each vertex of the first non-singleton cell.
        for v in target:
            # Give v a colour just below its cell, then re-rank densely.
            child = [c * 2 for c in colors]
            child[v] = colors[v] * 2 - 1
            others = sorted(set(child))
            remap = {c: r for r, c in enumerate(others)}
            search([remap[c] for c in child])

    search(colors0)
    assert best[0] is not None
    return best[0], alloc_counter[0]


class BlissLikeHasher:
    """Drop-in replacement for :class:`PatternHasher` using the search tree.

    Caches on the *raw* structure key (bliss canonicalises whatever it is
    handed; it has no cheap pre-normalisation), so automorphic raw
    structures each pay one canonicalisation — one of the two reasons the
    paper measures it slower and heavier than EigenHash.
    """

    def __init__(self, cache: bool = True) -> None:
        #: ``cache=False`` rebuilds the search tree on every call — the
        #: regime the paper measures (bliss is invoked per embedding).
        self.cache = cache
        self._cache: dict[tuple, int] = {}
        self._forms: dict[int, tuple] = {}
        self._representatives: dict[int, Pattern] = {}
        self.hits = 0
        self.misses = 0
        #: Cumulative search-tree node allocations (paper Section 1.2).
        self.total_allocations = 0
        self.peak_allocations_per_call = 0

    def hash_pattern(self, pattern: Pattern) -> int:
        key = (pattern.labels, pattern.bits, pattern.edge_labels)
        if self.cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        form, allocs = canonical_form_search(pattern)
        self.total_allocations += allocs
        self.peak_allocations_per_call = max(self.peak_allocations_per_call, allocs)
        value = _stable_hash(form[0] + (form[1],) + form[2])
        self._cache[key] = value
        self._forms[value] = form
        self._representatives.setdefault(
            value, Pattern(form[0], form[1], form[2] or None)
        )
        return value

    def representative(self, hash_value: int) -> Pattern | None:
        return self._representatives.get(hash_value)

    @property
    def nbytes(self) -> int:
        """Accounted footprint: cache entries plus retained canonical forms
        plus a per-call search-tree residue (bliss keeps allocator arenas
        warm; the paper measures exactly this growth)."""
        per_entry = 200  # key tuple + form tuple + dict slots
        tree_residue = 48 * self.peak_allocations_per_call
        return len(self._cache) * per_entry + len(self._forms) * 96 + tree_residue

    def __len__(self) -> int:
        return len(self._cache)
