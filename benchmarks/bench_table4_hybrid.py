"""Table 4: in-memory vs hybrid storage.

The paper runs 4-FSM over Patent (supports 50k / 100k) and 4-Motif over
Patent and MiCo, in memory and with the last CSE level spilled to SSD.
Paper shape: results identical, runtime penalty below ~30%, and the
accounted in-memory footprint drops for FSM (the spilled level is the
big one) while 4-Motif's footprint barely moves (it only stores k-1
levels plus fixed write buffers).
"""

import tempfile

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.bench import PROFILE, bench_graph, format_table

from conftest import run_once

#: Paper supports 50k/100k scale to the stand-in graphs' edge counts.
CASES = [
    ("4-FSM(PA,s=20)", "patent", lambda: FrequentSubgraphMining(3, 20)),
    ("4-FSM(PA,s=30)", "patent", lambda: FrequentSubgraphMining(3, 30)),
    ("4-Motif(PA)", "patent", lambda: MotifCounting(4)),
    ("4-Motif(MC)", "mico", lambda: MotifCounting(4)),
]


@pytest.mark.benchmark(group="table4")
def test_table4_hybrid_storage(benchmark, emit):
    rows = []
    penalties = []

    def run_cases():
        for name, dataset, factory in CASES:
            graph = bench_graph(dataset)
            with KaleidoEngine(graph, storage_mode="memory") as engine:
                mem = engine.run(factory())
            with tempfile.TemporaryDirectory(prefix="tbl4-") as tmp:
                with KaleidoEngine(
                    graph, storage_mode="spill-last", spill_dir=tmp
                ) as engine:
                    hyb = engine.run(factory())
            assert sorted(mem.value.values()) == sorted(hyb.value.values())
            penalty = hyb.wall_seconds / max(mem.wall_seconds, 1e-9)
            penalties.append((name, penalty))
            rows.append(
                [
                    name, "Yes", f"{mem.wall_seconds:.3f}",
                    f"{mem.peak_memory_bytes / 1e6:.2f}", "-",
                ]
            )
            rows.append(
                [
                    name, "No", f"{hyb.wall_seconds:.3f}",
                    f"{hyb.peak_memory_bytes / 1e6:.2f}",
                    f"{hyb.io_bytes_written / 1e6:.2f}",
                ]
            )
        return rows

    run_once(benchmark, run_cases)
    table = format_table(
        ["App", "In-Memory", "Time (s)", "Memory (MB)", "Disk written (MB)"],
        rows,
        title=f"Table 4 — hybrid storage (profile: {PROFILE})",
    )
    summary = "\n".join(
        f"  {name}: hybrid/in-memory runtime = {p:.2f}x" for name, p in penalties
    )
    emit(table + "\nPenalties (paper: < 1.3x, < 1.7x for 4-Motif):\n" + summary,
         name="table4_hybrid")

    # Acceptable attenuation: generous 3x bound for pure-Python I/O paths.
    for name, penalty in penalties:
        assert penalty < 3.0, (name, penalty)
