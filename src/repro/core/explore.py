"""Embedding exploration: expanding a CSE by one level (Section 3.1).

Vertex-induced expansion appends one neighboring vertex per step;
edge-induced expansion (used by FSM) appends one adjacent edge.  Both run
the Definition-2 canonical filter plus an optional user filter (Listing 1's
``EmbeddingFilter``).

Expansion is partitioned: the caller supplies contiguous part boundaries
over the current top level (either an even split or the prediction-driven
split from :mod:`repro.balance`), and each part becomes one executor task
so a :class:`repro.core.executor.PartExecutor` can run parts in any order
— serially, on a thread pool, on a process pool, or under the
work-stealing replay — with results merged deterministically in
part-index order.  Two per-part implementations exist:

* the **vectorized kernels** (:mod:`repro.core.kernels`): each part's
  embeddings are decoded straight off the CSE ``off``/``vert`` arrays as
  one 2-D block (:meth:`repro.core.cse.CSE.decode_block`) and expanded by
  batched numpy CSR gathers + canonical-filter masks.  This is the
  default whenever no Python ``embedding_filter`` is installed and every
  CSE level is resident;
* the **scalar per-part functions** (:func:`expand_vertex_part` /
  :func:`expand_edge_part`): the original per-embedding Python loops.
  They remain the parity oracle for the kernels and the fallback when a
  user filter must run per candidate or a level is spilled (streaming
  tuple decode keeps the out-of-core memory bound).

Output goes to a *sink* — in-memory for the common case, a spilling sink
(:mod:`repro.storage`) when the memory budget says the next level will not
fit; sinks accept out-of-order part submission (each write carries its
part index) so a concurrent executor can overlap part I/O with compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..balance.worksteal import Schedule
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from . import kernels
from .cse import CSE, InMemoryLevel, Level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.trace import Tracer
    from .executor import PartExecutor

__all__ = [
    "VertexFilter",
    "EdgeFilter",
    "ExpansionStats",
    "PartExpansion",
    "LevelSink",
    "InMemorySink",
    "VertexBlockTask",
    "EdgeBlockTask",
    "canonical_extensions",
    "expand_vertex_part",
    "expand_edge_part",
    "expand_vertex_level",
    "expand_edge_level",
    "even_parts",
]

#: Listing 1: ``bool EmbeddingFilter(Embedding e, Vertex v)``.
VertexFilter = Callable[[tuple[int, ...], int], bool]
#: Listing 1: ``bool EmbeddingFilter(Embedding e, Edge <u,v>)`` — receives
#: the embedding's edge-id tuple and the candidate edge's (u, v) endpoints.
EdgeFilter = Callable[[tuple[int, ...], tuple[int, int]], bool]


@dataclass
class PartExpansion:
    """What expanding one part produced — the executor's unit of work."""

    index: int
    bound: tuple[int, int]
    #: Emitted last-vertex (or edge-id) array for this part, in order.
    vert: np.ndarray
    #: Per-position emitted counts over ``bound`` (len == end - start).
    counts: np.ndarray
    emitted: int
    candidates_examined: int


@dataclass
class ExpansionStats:
    """What one level expansion did, per part."""

    part_bounds: list[tuple[int, int]] = field(default_factory=list)
    part_seconds: list[float] = field(default_factory=list)
    part_emitted: list[int] = field(default_factory=list)
    candidates_examined: int = 0
    emitted: int = 0
    #: The executor's schedule for this level (real or replayed timeline).
    schedule: Schedule | None = None

    @property
    def span_seconds(self) -> float:
        """Makespan if each part ran on its own worker."""
        return max(self.part_seconds, default=0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.part_seconds)


class LevelSink:
    """Receives expansion output part by part and produces the new level.

    ``write_part`` may be called out of part order by a concurrent
    executor; the ``index`` keyword carries the part's position so
    ``finish`` can assemble the level deterministically.
    """

    def write_part(
        self, vert: np.ndarray, index: int | None = None
    ) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def finish(self, off: np.ndarray) -> Level:  # pragma: no cover - protocol
        raise NotImplementedError

    def abort(self) -> None:
        """Discard everything written so far (error-path cleanup)."""


class InMemorySink(LevelSink):
    """Accumulates parts in memory into an :class:`InMemoryLevel`.

    ``dtype`` is the id storage width of the produced level; the planner
    derives it from the graph / edge-index size
    (:func:`repro.core.kernels.id_dtype`), so id spaces past the
    ``int32`` boundary widen to ``int64`` instead of overflowing.
    """

    def __init__(self, dtype: np.dtype | None = None) -> None:
        self._parts: list[tuple[int, np.ndarray]] = []
        self._seq = 0
        self._dtype = (
            np.dtype(dtype) if dtype is not None else kernels.DEFAULT_ID_DTYPE
        )

    def write_part(self, vert: np.ndarray, index: int | None = None) -> None:
        # Only unindexed writes consume the sequence counter, and explicit
        # indices push it past themselves, so mixing indexed and unindexed
        # writes can never produce duplicate sort keys.
        if index is None:
            key = self._seq
            self._seq += 1
        else:
            key = int(index)
            self._seq = max(self._seq, key + 1)
        self._parts.append((key, vert))

    def finish(self, off: np.ndarray) -> Level:
        ordered = [vert for _, vert in sorted(self._parts, key=lambda kv: kv[0])]
        if ordered:
            vert = np.concatenate(ordered)
        else:
            vert = np.zeros(0, dtype=self._dtype)
        return InMemoryLevel(vert, off, dtype=self._dtype)

    def abort(self) -> None:
        self._parts.clear()


def even_parts(total: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``num_parts`` contiguous near-equal parts."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    bounds = np.linspace(0, total, num_parts + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]


def _extends_inline(
    adjacency: list[frozenset[int]], embedding: tuple[int, ...], candidate: int
) -> bool:
    """Hot-path copy of :func:`repro.core.canonical.extends_canonically`
    working on pre-fetched adjacency sets (kept in sync by tests)."""
    if candidate <= embedding[0]:
        return False
    first_neighbor = -1
    for idx, vertex in enumerate(embedding):
        if vertex == candidate:
            return False
        if first_neighbor < 0 and candidate in adjacency[vertex]:
            first_neighbor = idx
    if first_neighbor < 0:
        return False
    for idx in range(first_neighbor + 1, len(embedding)):
        if embedding[idx] > candidate:
            return False
    return True


def canonical_extensions(graph: Graph, embedding: Sequence[int]) -> list[int]:
    """All vertices that extend ``embedding`` canonically (Definition 2)."""
    adjacency = graph.adjacency_sets()
    emb = tuple(int(v) for v in embedding)
    if len(emb) == 1:
        candidates = graph.neighbors(emb[0]).tolist()
    else:
        merged: set[int] = set()
        for v in emb:
            merged.update(adjacency[v])
        candidates = sorted(merged)
    return [cand for cand in candidates if _extends_inline(adjacency, emb, cand)]


# ----------------------------------------------------------------------
# Per-part pure functions
# ----------------------------------------------------------------------
def expand_vertex_part(
    graph: Graph,
    adjacency: list[frozenset[int]],
    embeddings: Sequence[tuple[int, ...]],
    bound: tuple[int, int],
    index: int,
    embedding_filter: VertexFilter | None = None,
    out_dtype: np.dtype | None = None,
) -> PartExpansion:
    """Expand one contiguous part of a level by one vertex.

    Pure function of its inputs (the graph and adjacency are read-only),
    so an executor may run parts concurrently and in any order.  This is
    the scalar reference implementation — the parity oracle for
    :func:`repro.core.kernels.expand_vertex_block` and the fallback when
    a Python ``embedding_filter`` must run per candidate.
    """
    buffer: list[int] = []
    counts = np.zeros(len(embeddings), dtype=np.int64)
    examined = 0
    for i, emb in enumerate(embeddings):
        if len(emb) == 1:
            candidates = graph.neighbors(emb[0]).tolist()
        else:
            merged: set[int] = set()
            for v in emb:
                merged.update(adjacency[v])
            candidates = sorted(merged)
        examined += len(candidates)
        emitted_here = 0
        for cand in candidates:
            if not _extends_inline(adjacency, emb, cand):
                continue
            if embedding_filter is not None and not embedding_filter(emb, cand):
                continue
            buffer.append(cand)
            emitted_here += 1
        counts[i] = emitted_here
    return PartExpansion(
        index=index,
        bound=bound,
        vert=np.asarray(
            buffer,
            dtype=out_dtype if out_dtype is not None else kernels.DEFAULT_ID_DTYPE,
        ),
        counts=counts,
        emitted=len(buffer),
        candidates_examined=examined,
    )


def expand_edge_part(
    eu: Sequence[int],
    ev: Sequence[int],
    incident: Sequence[Sequence[int]],
    embeddings: Sequence[tuple[int, ...]],
    bound: tuple[int, int],
    index: int,
    embedding_filter: EdgeFilter | None = None,
    out_dtype: np.dtype | None = None,
) -> PartExpansion:
    """Edge-induced analogue of :func:`expand_vertex_part`.

    CSE levels hold edge ids; the candidate set of an embedding is every
    edge incident to one of its endpoint vertices.  Scalar reference for
    :func:`repro.core.kernels.expand_edge_block`.
    """
    buffer: list[int] = []
    counts = np.zeros(len(embeddings), dtype=np.int64)
    examined = 0
    for i, emb in enumerate(embeddings):
        # Arrival index: first embedding position at which each vertex
        # appears — gives the O(1) "first reachable" step of the
        # edge-canonicality rule.
        arrival: dict[int, int] = {}
        for idx, eid in enumerate(emb):
            for w in (eu[eid], ev[eid]):
                if w not in arrival:
                    arrival[w] = idx
        candidates: set[int] = set()
        for w in arrival:
            candidates.update(incident[w])
        emb_set = set(emb)
        first_id = emb[0]
        k = len(emb)
        emitted_here = 0
        examined += len(candidates)
        for cand in sorted(candidates):
            if cand <= first_id or cand in emb_set:
                continue
            first = arrival.get(eu[cand], k)
            other = arrival.get(ev[cand], k)
            if other < first:
                first = other
            if first >= k:
                continue
            ok = True
            for idx in range(first + 1, k):
                if emb[idx] > cand:
                    ok = False
                    break
            if not ok:
                continue
            if embedding_filter is not None and not embedding_filter(
                emb, (eu[cand], ev[cand])
            ):
                continue
            buffer.append(cand)
            emitted_here += 1
        counts[i] = emitted_here
    return PartExpansion(
        index=index,
        bound=bound,
        vert=np.asarray(
            buffer,
            dtype=out_dtype if out_dtype is not None else kernels.DEFAULT_ID_DTYPE,
        ),
        counts=counts,
        emitted=len(buffer),
        candidates_examined=examined,
    )


# ----------------------------------------------------------------------
# Vectorized block tasks (one per part, shipped whole to executors)
# ----------------------------------------------------------------------
class _BlockTask:
    """One part's vectorized expansion: a decoded block plus its bounds.

    Instances are the executor's unit of work on the kernel path.  The
    kernel context (the graph's CSR arrays) rides along locally for
    in-process executors, but is *stripped on pickle*: a
    :class:`~repro.core.executor.ProcessExecutor` reads
    ``shared_context`` once, installs it in every worker through the pool
    initializer, and the unpickled task looks it up via
    :func:`repro.core.kernels.current_worker_context` — so each task's
    pickle carries only its block.
    """

    kernel: Callable = None  # type: ignore[assignment]

    def __init__(
        self,
        ctx,
        block: np.ndarray | None,
        bound: tuple[int, int],
        index: int,
        restrictions=None,
        level_handle=None,
    ) -> None:
        self.shared_context = ctx
        self.block = block
        self.bound = bound
        self.index = index
        #: Fused symmetry-breaking bounds (KernelRestrictions) or None
        #: for the masked path.  Tiny and immutable, so unlike the
        #: context it stays in the pickle.
        self.restrictions = restrictions
        #: Zero-copy mode: a :class:`repro.core.shm.SharedLevelsHandle`
        #: naming the CSE level arrays.  ``block`` is then ``None`` and
        #: the *worker* decodes its own bounds from the shared views, so
        #: the pickle carries no embedding data at all.
        self.level_handle = level_handle

    def __getstate__(self) -> dict:
        return {
            "block": self.block,
            "bound": self.bound,
            "index": self.index,
            "restrictions": self.restrictions,
            "level_handle": self.level_handle,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.shared_context = None

    def __call__(self) -> PartExpansion:
        ctx = self.shared_context
        if ctx is None:
            ctx = kernels.current_worker_context()
        block = self.block
        if block is None:
            from . import shm
            from .cse import decode_block_arrays

            verts, offs = shm.attach_levels(self.level_handle)
            block = decode_block_arrays(verts, offs, *self.bound)
        vert, counts, examined = type(self).kernel(ctx, block, self.restrictions)
        return PartExpansion(
            index=self.index,
            bound=self.bound,
            vert=vert,
            counts=counts,
            emitted=int(vert.shape[0]),
            candidates_examined=examined,
        )


class VertexBlockTask(_BlockTask):
    kernel = staticmethod(kernels.expand_vertex_block)


class EdgeBlockTask(_BlockTask):
    kernel = staticmethod(kernels.expand_edge_block)


def _scalar_task_factory(cse: CSE, make_part: Callable[..., PartExpansion]):
    """Tasks that stream the level once and decode tuples per part.

    A spilled level never materialises: each part's embeddings are
    decoded lazily as the executor pulls its task, so the serial executor
    holds at most one part's tuples in memory at a time.
    """

    def factory(parts: Sequence[tuple[int, int]]):
        emb_iter = iter(cse.iter_embeddings())
        for index, bound in enumerate(parts):
            start, end = bound
            embeddings = [emb for _, emb in islice(emb_iter, end - start)]
            yield partial(make_part, embeddings, bound, index)

    return factory


def _block_task_factory(
    cse: CSE, ctx, task_cls: type[_BlockTask], restrictions=None, share=None
):
    """Tasks that decode each part as one 2-D block (kernel fast path).

    Decoding happens as the executor pulls each task, so at most a
    bounded number of blocks (the executor's in-flight window) exist at
    once.  ``restrictions`` (optional
    :class:`~repro.core.restrictions.KernelRestrictions`) selects the
    fused symmetry-breaking gather inside the kernel.  With ``share`` (a
    :class:`repro.core.shm.LevelShare` from :func:`~repro.core.shm.export_levels`)
    no block is decoded here at all: tasks carry only their bounds and
    workers decode from the shared level views.
    """

    def factory(parts: Sequence[tuple[int, int]]):
        for index, (start, end) in enumerate(parts):
            if share is not None:
                yield task_cls(
                    ctx, None, (start, end), index, restrictions,
                    level_handle=share.handle,
                )
            else:
                yield task_cls(
                    ctx, cse.decode_block(start, end), (start, end), index, restrictions
                )

    return factory


def _maybe_share_levels(cse: CSE, executor):
    """Export the CSE levels for a zero-copy executor, if there is one.

    Returns a :class:`repro.core.shm.LevelShare` (the caller must close
    it after the run) when the executor advertises ``zero_copy`` and
    every level is shareable — in-memory levels go into one shared
    segment, mmap-backed spilled levels ride as part-file names.  Any
    other executor, or an unshareable level, returns ``None`` and the
    driver decodes blocks coordinator-side as before.
    """
    if not getattr(executor, "zero_copy", False):
        return None
    from . import shm

    return shm.export_levels(cse)


# ----------------------------------------------------------------------
# Driver: stream the level into part tasks, execute, merge in part order
# ----------------------------------------------------------------------
def _run_expansion(
    cse: CSE,
    parts: Sequence[tuple[int, int]] | None,
    sink: LevelSink | None,
    executor: "PartExecutor | None",
    workers: int,
    task_factory: Callable[[Sequence[tuple[int, int]]], Iterable[Callable[[], PartExpansion]]],
    tracer: "Tracer | None" = None,
    dtype: np.dtype | None = None,
) -> ExpansionStats:
    """Common expansion driver shared by the vertex and edge paths.

    ``task_factory`` turns the part bounds into executor tasks — either
    the streaming scalar decode or the vectorized block decode.
    Completed parts go to the sink as they finish (possibly out of
    order); counts and stats are assembled in part-index order, so the
    produced level is identical for every executor.
    """
    from .executor import SerialExecutor

    total = cse.size()
    if parts is None:
        parts = [(0, total)]
    _check_parts(parts, total)
    if sink is None:
        sink = InMemorySink(dtype=dtype)
    if executor is None:
        executor = SerialExecutor()

    counts = np.zeros(total, dtype=np.int64)

    def on_result(index: int, part: PartExpansion) -> None:
        sink.write_part(part.vert, index=index)
        start, end = part.bound
        counts[start:end] = part.counts

    try:
        report = executor.run(
            task_factory(parts), workers=workers, on_result=on_result,
            tracer=tracer, phase="execute",
        )
    except BaseException:
        sink.abort()
        raise

    stats = ExpansionStats(schedule=report.schedule)
    for part, seconds in zip(report.results, report.durations):
        stats.part_bounds.append(part.bound)
        stats.part_seconds.append(seconds)
        stats.part_emitted.append(part.emitted)
        stats.candidates_examined += part.candidates_examined
        stats.emitted += part.emitted

    off = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    try:
        cse.append_level(sink.finish(off))
    except BaseException:
        # finish() may surface a background-writer error (or an off/vert
        # mismatch); discard whatever parts already landed so a failed
        # level never leaks spill files.
        sink.abort()
        raise
    return stats


def expand_vertex_level(
    graph: Graph,
    cse: CSE,
    embedding_filter: VertexFilter | None = None,
    parts: Sequence[tuple[int, int]] | None = None,
    sink: LevelSink | None = None,
    executor: "PartExecutor | None" = None,
    workers: int = 1,
    tracer: "Tracer | None" = None,
    use_kernels: bool = True,
    restrictions=None,
) -> ExpansionStats:
    """Expand the CSE's top level by one vertex (one exploration iteration).

    Parts are contiguous position ranges over the top level; each becomes
    one executor task.  Runs the vectorized block kernel when no
    ``embedding_filter`` is installed and every level is resident
    (``use_kernels=False`` forces the scalar path — the parity oracle);
    otherwise falls back to the scalar per-embedding loop.
    ``restrictions`` (a
    :class:`~repro.core.restrictions.KernelRestrictions` from the level
    plan) fuses the symmetry-breaking bounds into the kernel gather; it
    only affects the kernel path — the scalar fallback always runs the
    unrestricted canonical filter, which emits the same level.  Appends
    the new level to the CSE and returns the per-part stats.  ``tracer``
    (optional) receives the executor's per-part worker spans.
    """
    dtype = graph.id_dtype
    share = None
    if embedding_filter is None and use_kernels and cse.block_decodable():
        ctx = kernels.vertex_kernel_context(graph, out_dtype=dtype)
        share = _maybe_share_levels(cse, executor)
        factory = _block_task_factory(cse, ctx, VertexBlockTask, restrictions, share)
    else:
        adjacency = graph.adjacency_sets()
        make_part = partial(_vertex_part_task, graph, adjacency, embedding_filter, dtype)
        factory = _scalar_task_factory(cse, make_part)
    try:
        return _run_expansion(
            cse, parts, sink, executor, workers, factory, tracer, dtype
        )
    finally:
        if share is not None:
            share.close()


def _vertex_part_task(graph, adjacency, embedding_filter, dtype, embeddings, bound, index):
    return expand_vertex_part(
        graph, adjacency, embeddings, bound, index, embedding_filter, out_dtype=dtype
    )


def expand_edge_level(
    graph: Graph,
    index: EdgeIndex,
    cse: CSE,
    embedding_filter: EdgeFilter | None = None,
    parts: Sequence[tuple[int, int]] | None = None,
    sink: LevelSink | None = None,
    executor: "PartExecutor | None" = None,
    workers: int = 1,
    tracer: "Tracer | None" = None,
    use_kernels: bool = True,
    restrictions=None,
) -> ExpansionStats:
    """Edge-induced analogue of :func:`expand_vertex_level`."""
    dtype = index.id_dtype
    share = None
    if embedding_filter is None and use_kernels and cse.block_decodable():
        ctx = kernels.edge_kernel_context(index, out_dtype=dtype)
        share = _maybe_share_levels(cse, executor)
        factory = _block_task_factory(cse, ctx, EdgeBlockTask, restrictions, share)
    else:
        eu, ev = index.endpoint_lists()
        incident = index.incident_lists()
        make_part = partial(_edge_part_task, eu, ev, incident, embedding_filter, dtype)
        factory = _scalar_task_factory(cse, make_part)
    try:
        return _run_expansion(
            cse, parts, sink, executor, workers, factory, tracer, dtype
        )
    finally:
        if share is not None:
            share.close()


def _edge_part_task(eu, ev, incident, embedding_filter, dtype, embeddings, bound, index):
    return expand_edge_part(
        eu, ev, incident, embeddings, bound, index, embedding_filter, out_dtype=dtype
    )


def _check_parts(parts: Sequence[tuple[int, int]], total: int) -> None:
    expected = 0
    for start, end in parts:
        if start != expected or end < start:
            raise ValueError(f"parts must be contiguous over 0..{total}, got {parts}")
        expected = end
    if expected != total:
        raise ValueError(f"parts cover 0..{expected}, level has {total} embeddings")
