"""The service result cache: mined answers keyed by content identity.

Keys are ``(graph fingerprint, app, k, canonical params)``.  Because the
fingerprint is a digest of the graph's *contents*
(:meth:`repro.graph.graph.Graph.fingerprint`), the cache survives
process restarts of the data (reloading the same file yields the same
key) and invalidates structurally: a mutated or relabeled graph has a
different fingerprint, so its queries simply miss — stale entries for
the old contents age out of the LRU rather than ever being served for
the new contents.

Thread-safe; a single lock guards the ordered map (entries are small —
pattern maps, not embeddings — and hits are O(1), so contention is not a
concern at service scale).  Hits, misses, evictions and the live entry
count are reported through the ``service.cache.*`` metrics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from ..obs.metrics import MetricsRegistry

__all__ = ["CacheKey", "CachedAnswer", "ResultCache"]

#: ``(graph fingerprint, app name, k, canonical params tuple)``.
CacheKey = tuple[str, str, int, tuple]


@dataclass(frozen=True)
class CachedAnswer:
    """The reusable part of a query's answer."""

    value: Any
    pattern_map: dict[int, Any]
    route: str
    error_bars: dict[int, float] | None = None


class ResultCache:
    """Bounded LRU map from :data:`CacheKey` to :class:`CachedAnswer`."""

    def __init__(
        self, max_entries: int = 256, metrics: MetricsRegistry | None = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[CacheKey, CachedAnswer] = {}  # guarded-by: _lock
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = metrics.counter("service.cache.hits")
        self._misses = metrics.counter("service.cache.misses")
        self._evictions = metrics.counter("service.cache.evictions")
        self._size = metrics.gauge("service.cache.entries")

    def get(self, key: CacheKey) -> CachedAnswer | None:
        with self._lock:
            answer = self._entries.get(key)
            if answer is None:
                self._misses.inc()
                return None
            # LRU touch: re-insert at the recently-used end.
            self._entries[key] = self._entries.pop(key)
            self._hits.inc()
            return answer

    def put(self, key: CacheKey, answer: CachedAnswer) -> None:
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = answer
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                self._evictions.inc()
            self._size.set(len(self._entries))

    def invalidate_graph(self, fingerprint: str) -> int:
        """Drop every entry for one graph fingerprint (explicit flush).

        Content-keyed caching makes this optional — a changed graph
        changes its fingerprint and misses naturally — but operators
        replacing a dataset in place can reclaim the space eagerly.
        """
        with self._lock:
            doomed = [key for key in self._entries if key[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            self._size.set(len(self._entries))
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
