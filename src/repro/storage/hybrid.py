"""Hybrid half-memory-half-disk storage policy (Section 4.1).

Glue between the explorer and the spill machinery:

* :class:`SpillingSink` — a :class:`repro.core.explore.LevelSink` that
  routes each exploration part through the writing queue (carrying the
  part index, so out-of-order submission from a concurrent executor still
  assembles a deterministic level) and finishes into a
  :class:`SpilledLevel`.
* :func:`spill_level` — demote an existing in-memory level to disk.
* :class:`StoragePolicy` — decides, before each expansion, whether the new
  level goes to memory or disk, given the memory budget and a size
  prediction for the next level.  The decision (:meth:`should_spill`) and
  the sink construction (:meth:`make_sink`) are separate so the planner
  can record the choice in its :class:`~repro.core.plan.LevelPlan`.

The policy is also the engine's degradation lever: when the device runs
out of space mid-level (:class:`~repro.errors.DiskFullError`) or the
memory budget cannot be honoured, :meth:`StoragePolicy.degrade` steps the
I/O mode down — first dropping prefetch (shrinking the sliding window to
a single part), then falling back to synchronous writes — and the engine
re-plans the failed iteration under the reduced mode before giving up.
"""

from __future__ import annotations

import numpy as np

from ..balance.predict import IOPlan, plan_io
from ..core.cse import CSE, InMemoryLevel, Level
from ..core.explore import InMemorySink, LevelSink
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .meter import MemoryBudget, MemoryMeter
from .queue import WritingQueue
from .retry import RetryPolicy
from .spill import PartStore, SpilledLevel

__all__ = ["SpillingSink", "spill_level", "StoragePolicy"]


class SpillingSink(LevelSink):
    """Writes expansion parts to disk through the writing queue."""

    def __init__(
        self,
        store: PartStore,
        synchronous: bool = False,
        prefetch: bool = True,
        tag: str = "vert",
        queue_maxsize: int = 16,
        dtype: np.dtype | None = None,
        prefetch_depth: int = 1,
    ) -> None:
        self.store = store
        self.prefetch = prefetch
        self.prefetch_depth = prefetch_depth
        self.dtype = None if dtype is None else np.dtype(dtype)
        self._queue = WritingQueue(store, synchronous=synchronous, maxsize=queue_maxsize)
        self._tag = tag

    def write_part(self, vert: np.ndarray, index: int | None = None) -> None:
        self._queue.submit(vert, tag=self._tag, index=index)

    def finish(self, off: np.ndarray) -> Level:
        handles = self._queue.close()
        return SpilledLevel(
            self.store,
            handles,
            off,
            prefetch=self.prefetch,
            prefetch_depth=self.prefetch_depth,
            dtype=self.dtype,
        )

    def abort(self) -> None:
        """Stop the queue and delete the partial level's files."""
        self._queue.discard()


def spill_level(
    level: Level,
    store: PartStore,
    part_entries: int = 1 << 16,
    prefetch: bool = True,
    prefetch_depth: int = 1,
) -> SpilledLevel:
    """Write an in-memory level's vertex array to disk in fixed-size parts."""
    if isinstance(level, SpilledLevel):
        return level
    vert = level.vert_array()
    handles = []
    for start in range(0, max(1, vert.shape[0]), part_entries):
        chunk = vert[start : start + part_entries]
        if chunk.shape[0] == 0 and handles:
            break
        handles.append(store.save(chunk, tag="demoted"))
    return SpilledLevel(
        store,
        handles,
        level.off_array(),
        prefetch=prefetch,
        prefetch_depth=prefetch_depth,
        dtype=vert.dtype,
    )


class StoragePolicy:
    """Chooses memory vs disk for each new CSE level.

    The prediction of the next level's size (sum of predicted candidate
    counts, 4 bytes per emitted vertex as an upper bound before filtering)
    is compared against the budget headroom; when it does not fit, the new
    level is spilled — and if that is still not enough, the current top
    level is demoted too (deep explorations spill several levels, one
    window per on-disk level, per the paper).
    """

    def __init__(
        self,
        budget: MemoryBudget,
        meter: MemoryMeter,
        store: PartStore | None = None,
        synchronous_io: bool = False,
        prefetch: bool = True,
        force_spill_last: bool = False,
        queue_maxsize: int = 16,
        retry: "RetryPolicy | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
        prefetch_depth: int = 1,
        adaptive_io: bool = True,
    ) -> None:
        self.budget = budget
        self.meter = meter
        self.store = store
        self.synchronous_io = synchronous_io
        self.prefetch = prefetch
        self.force_spill_last = force_spill_last
        self.queue_maxsize = queue_maxsize
        self.retry = retry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Baseline prefetch depth; the adaptive scheduler may raise it
        #: per level from measured rates when ``adaptive_io`` is on.
        self.prefetch_depth = max(1, prefetch_depth)
        self.adaptive_io = adaptive_io
        #: The scheduler's most recent choice (an
        #: :class:`~repro.balance.predict.IOPlan`), recorded per plan and
        #: surfaced in the engine result's ``extra["io_plan"]``.
        self.last_io_plan: IOPlan | None = None
        # EMA'd rates (bytes/second) feeding the scheduler, plus the
        # last-seen store read counters to diff against.
        self._read_bps: float | None = None
        self._compute_bps: float | None = None
        self._seen_read_bytes = 0
        self._seen_read_seconds = 0.0
        if store is not None:
            # The engine constructs the store before the policy; share
            # the observability hooks so queue/window events flow.
            store.tracer = self.tracer
            store.metrics = metrics
        self.spilled_levels = 0
        self.demoted_levels = 0
        #: Degradation steps applied so far, in order.
        self.degradations: list[str] = []

    def _ensure_store(self) -> PartStore:
        if self.store is None:
            self.store = PartStore(
                retry=self.retry, tracer=self.tracer, metrics=self.metrics
            )
        return self.store

    @property
    def io_mode(self) -> str:
        """Human-readable current write/read mode (recorded per plan)."""
        write = "sync" if self.synchronous_io else "async"
        read = "prefetch" if self.prefetch else "no-prefetch"
        return f"{write}+{read}"

    def degrade(self) -> str | None:
        """Step the I/O mode down after a disk-full or budget failure.

        Returns the step applied (``"prefetch-off"`` shrinks the sliding
        window to a single part and stops read-ahead;
        ``"synchronous-io"`` drops the background writer so at most one
        part is ever buffered), or ``None`` when already fully degraded —
        the caller should give up and re-raise.
        """
        if self.prefetch:
            self.prefetch = False
            self.degradations.append("prefetch-off")
            return "prefetch-off"
        if not self.synchronous_io:
            self.synchronous_io = True
            self.degradations.append("synchronous-io")
            return "synchronous-io"
        return None

    def should_spill(self, predicted_entries: int, bytes_per_entry: int = 4) -> bool:
        """Whether the next level must go to disk."""
        if self.force_spill_last:
            return True
        predicted_bytes = predicted_entries * bytes_per_entry
        return not self.budget.fits(self.meter.current_bytes, predicted_bytes)

    # ------------------------------------------------------------------
    # Adaptive I/O scheduling (Silvestri-bound part size / prefetch depth)
    # ------------------------------------------------------------------
    def observe_level(
        self, emitted_entries: int, emitted_bytes: int, seconds: float
    ) -> None:
        """Feed one executed level's rates into the scheduler's EMAs.

        The engine calls this after every execute stage: the compute rate
        is the level's emitted bytes over its wall seconds, and the read
        rate is diffed from the store's cumulative I/O counters (which
        both ``load`` and ``open_mmap`` feed).  Exponential smoothing
        (``alpha=0.5``) keeps one noisy level from whipsawing the plan.
        """
        alpha = 0.5
        if seconds > 0 and emitted_bytes > 0:
            rate = emitted_bytes / seconds
            self._compute_bps = (
                rate
                if self._compute_bps is None
                else alpha * rate + (1 - alpha) * self._compute_bps
            )
        if self.store is not None:
            read_bytes = self.store.io.bytes_read - self._seen_read_bytes
            read_seconds = self.store.io.read_seconds - self._seen_read_seconds
            self._seen_read_bytes = self.store.io.bytes_read
            self._seen_read_seconds = self.store.io.read_seconds
            if read_bytes > 0 and read_seconds > 0:
                rate = read_bytes / read_seconds
                self._read_bps = (
                    rate
                    if self._read_bps is None
                    else alpha * rate + (1 - alpha) * self._read_bps
                )

    def plan_io(self, predicted_entries: int, bytes_per_entry: int = 4) -> IOPlan:
        """Choose part size and prefetch depth for the next spilled level.

        With ``adaptive_io`` off the fixed knobs stand (``1 << 16``
        entries per part, the configured ``prefetch_depth``); otherwise
        the choice follows :func:`repro.balance.predict.plan_io` over the
        budget headroom and the measured EMA rates.  The plan is recorded
        on ``last_io_plan`` and traced.
        """
        if not self.adaptive_io:
            plan = IOPlan(
                part_entries=1 << 16,
                prefetch_depth=self.prefetch_depth,
                bytes_per_entry=max(1, int(bytes_per_entry)),
                window_bytes=(1 + self.prefetch_depth)
                * (1 << 16)
                * max(1, int(bytes_per_entry)),
                source="fixed",
            )
        else:
            plan = plan_io(
                predicted_entries,
                bytes_per_entry,
                headroom_bytes=self.budget.headroom(self.meter.current_bytes),
                read_bps=self._read_bps,
                compute_bps=self._compute_bps,
            )
            if plan.prefetch_depth < self.prefetch_depth:
                plan = IOPlan(
                    part_entries=plan.part_entries,
                    prefetch_depth=self.prefetch_depth,
                    bytes_per_entry=plan.bytes_per_entry,
                    window_bytes=(1 + self.prefetch_depth)
                    * plan.part_entries
                    * plan.bytes_per_entry,
                    read_bps=plan.read_bps,
                    compute_bps=plan.compute_bps,
                    source=plan.source,
                )
        self.last_io_plan = plan
        if self.tracer.enabled:
            self.tracer.instant(
                "io-plan",
                part_entries=plan.part_entries,
                prefetch_depth=plan.prefetch_depth,
                source=plan.source,
            )
        return plan

    def make_sink(self, cse: CSE, dtype=None, io_plan: IOPlan | None = None) -> "SpillingSink":
        """Build the spilling sink, demoting the top level when pressed.

        If even the offsets of existing levels blow the budget, the
        current top level is demoted to disk as well.  ``dtype`` is the
        produced level's id storage width, recorded on the
        :class:`SpilledLevel` so empty levels reload at the right width.
        ``io_plan`` (from :meth:`plan_io`) sets the part granularity for
        the demotion and the read-ahead depth of the produced level.
        """
        self.spilled_levels += 1
        store = self._ensure_store()
        depth = io_plan.prefetch_depth if io_plan is not None else self.prefetch_depth
        if self.tracer.enabled:
            self.tracer.instant("spill", depth=cse.depth, io_mode=self.io_mode)
        if not self.budget.fits(self.meter.current_bytes, 0) and cse.depth > 1:
            top = cse.levels[-1]
            if isinstance(top, InMemoryLevel):
                cse.levels[-1] = spill_level(
                    top,
                    store,
                    part_entries=(
                        io_plan.part_entries if io_plan is not None else 1 << 16
                    ),
                    prefetch=self.prefetch,
                    prefetch_depth=depth,
                )
                self.demoted_levels += 1
                if self.tracer.enabled:
                    self.tracer.instant("demote", depth=cse.depth)
        return SpillingSink(
            store,
            synchronous=self.synchronous_io,
            prefetch=self.prefetch,
            tag=f"vert{cse.depth + 1}",
            queue_maxsize=self.queue_maxsize,
            dtype=dtype,
            prefetch_depth=depth,
        )

    def sink_for_next_level(
        self,
        cse: CSE,
        predicted_entries: int,
        bytes_per_entry: int = 4,
        dtype=None,
    ) -> LevelSink:
        """Sink for the upcoming expansion, spilling when needed.

        ``dtype`` is the produced level's id storage width (the planner
        derives it from the graph / edge-index size so ids past the
        ``int32`` boundary widen instead of overflowing).  When the level
        spills, the adaptive scheduler (:meth:`plan_io`) picks its part
        size and prefetch depth first.
        """
        if not self.should_spill(predicted_entries, bytes_per_entry):
            return InMemorySink(dtype=dtype)
        io_plan = self.plan_io(predicted_entries, bytes_per_entry)
        return self.make_sink(cse, dtype=dtype, io_plan=io_plan)

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
