#!/usr/bin/env python
"""Pipeline smoke benchmark: one small motif workload, both executors.

Runs 3-motif counting on the tiny citeseer stand-in under the serial
(work-stealing replay) executor and the real thread-pool executor, and
writes a ``BENCH_pipeline.json`` record with wall seconds, peak bytes,
and utilization per executor plus the per-stage phase spans.  Meant as a
cheap CI guard that the plan → execute → aggregate pipeline stays wired
up for every executor, not as a performance measurement.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import KaleidoEngine, MotifCounting  # noqa: E402
from repro.core.executor import EXECUTOR_CHOICES  # noqa: E402
from repro.graph import datasets  # noqa: E402


def run_one(graph, executor: str) -> dict:
    with KaleidoEngine(graph, workers=4, executor=executor) as engine:
        result = engine.run(MotifCounting(3))
    return {
        "executor": result.extra["executor"],
        "wall_seconds": result.wall_seconds,
        "peak_bytes": result.peak_memory_bytes,
        "utilization": result.utilization,
        "phase_spans": result.phase_spans,
        "pattern_counts": sorted(result.value.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pipeline.json")
    parser.add_argument("--dataset", default="citeseer")
    args = parser.parse_args(argv)

    graph = datasets.load(args.dataset, "tiny")
    runs = [run_one(graph, executor) for executor in EXECUTOR_CHOICES]

    counts = {tuple(run["pattern_counts"]) for run in runs}
    if len(counts) != 1:
        print("FAIL: executors disagree on pattern counts", file=sys.stderr)
        for run in runs:
            print(f"  {run['executor']}: {run['pattern_counts']}", file=sys.stderr)
        return 1

    record = {
        "benchmark": "pipeline_smoke",
        "workload": {"app": "motif", "k": 3, "dataset": args.dataset, "profile": "tiny"},
        "runs": runs,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    for run in runs:
        print(
            f"{run['executor']:>10}: {run['wall_seconds']:.3f}s wall, "
            f"{run['peak_bytes']} peak bytes, {run['utilization']:.2f} utilization"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
