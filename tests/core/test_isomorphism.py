"""Unit tests for exact isomorphism and canonical keys."""

import numpy as np

from repro.core import Pattern, are_isomorphic, automorphism_count, canonical_key
from repro.core.isomorphism import automorphisms


def _chain(labels):
    k = len(labels)
    mat = np.zeros((k, k), dtype=int)
    for i in range(k - 1):
        mat[i, i + 1] = mat[i + 1, i] = 1
    return Pattern.from_adjacency(labels, mat)


def _cycle(labels):
    k = len(labels)
    mat = np.zeros((k, k), dtype=int)
    for i in range(k):
        mat[i, (i + 1) % k] = mat[(i + 1) % k, i] = 1
    return Pattern.from_adjacency(labels, mat)


def test_identical_isomorphic():
    p = _chain([0, 1, 0])
    assert are_isomorphic(p, p)


def test_relabeled_isomorphic():
    p = _chain([0, 1, 2])
    assert are_isomorphic(p, p.permute([2, 1, 0]))


def test_different_sizes():
    assert not are_isomorphic(_chain([0, 0]), _chain([0, 0, 0]))


def test_different_label_multisets():
    assert not are_isomorphic(_chain([0, 0, 0]), _chain([0, 0, 1]))


def test_same_labels_different_structure():
    chain = _chain([0, 0, 0, 0])
    cycle = _cycle([0, 0, 0, 0])
    assert not are_isomorphic(chain, cycle)


def test_label_position_matters():
    # chain a-b-a vs chain a-a-b: same multiset, different structure.
    p1 = _chain([0, 1, 0])
    p2 = _chain([0, 0, 1])
    assert not are_isomorphic(p1, p2)


def test_canonical_key_invariant_under_permutation():
    rng = np.random.default_rng(3)
    p = _cycle([0, 1, 0, 1])
    for _ in range(10):
        perm = rng.permutation(4).tolist()
        assert canonical_key(p.permute(perm)) == canonical_key(p)


def test_canonical_key_separates_non_isomorphic():
    assert canonical_key(_chain([0, 0, 0, 0])) != canonical_key(_cycle([0, 0, 0, 0]))


def test_canonical_key_vs_exact_iso_random():
    rng = np.random.default_rng(11)
    pats = []
    for _ in range(40):
        k = int(rng.integers(2, 6))
        mat = np.triu((rng.random((k, k)) < 0.5).astype(int), 1)
        mat = mat + mat.T
        labels = rng.integers(0, 2, size=k).tolist()
        pats.append(Pattern.from_adjacency(labels, mat))
    for a in pats:
        for b in pats:
            assert (canonical_key(a) == canonical_key(b)) == are_isomorphic(a, b)


def test_automorphism_count_path():
    assert automorphism_count(_chain([0, 0, 0])) == 2  # reflection
    assert automorphism_count(_chain([0, 1, 0])) == 2
    assert automorphism_count(_chain([0, 1, 2])) == 1


def test_automorphism_count_cycle_and_clique():
    assert automorphism_count(_cycle([0, 0, 0])) == 6  # K3 = S3
    assert automorphism_count(_cycle([0, 0, 0, 0])) == 8  # C4 dihedral


def test_automorphisms_are_automorphisms():
    p = _cycle([0, 0, 0, 0])
    auts = automorphisms(p)
    assert len(auts) == 8
    for perm in auts:
        assert p.permute(perm) == p


def test_automorphisms_identity_present():
    p = _chain([0, 1, 2])
    assert automorphisms(p) == [(0, 1, 2)]
