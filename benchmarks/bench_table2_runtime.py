"""Table 2: running time of Kaleido vs Arabesque-like vs RStream-like.

Reproduces the paper's full application grid — 3-FSM over four supports,
3-/4-Motif, 3-/4-/5-Clique, TC — on all four datasets and all three
systems.  Result digests are cross-checked so every timing compares equal
answers.  The paper's '/'-cells (RStream intermediate data exceeding the
SSD) reappear here through a scaled simulated disk cap.

The paper's headline: Kaleido beats Arabesque by GeoMean 12.3x and
RStream by 40.0x (CiteSeer excluded from the GeoMean, as in the paper).
We assert the ordering (Kaleido wins every comparable non-CiteSeer cell
on aggregate) and report our factors in EXPERIMENTS.md.
"""

import pytest

from repro.bench import (
    PROFILE,
    TABLE2_GRID,
    bench_graph,
    comparison_table,
    geomean_block,
    run_arabesque,
    run_kaleido,
    run_rstream,
)
from repro.bench.record import RunRecord, geomean
from repro.errors import StorageError

from conftest import run_once

DATASETS = ["citeseer", "mico", "patent", "youtube"]

#: Scaled stand-in for the paper's 480 GB SSD: enough for every workload
#: except the all-join 4-Motif blowup, as in the paper.
RSTREAM_DISK_CAP = 64 * 2**20

#: 4-Motif on full-scale CiteSeer is harmless; the cap only matters on the
#: denser stand-ins.  5-Clique on RStream mirrors the paper's '-' on MiCo
#: by just running (our scaled MiCo fits).


def _grid():
    for dataset in DATASETS:
        for kind, option in TABLE2_GRID:
            yield dataset, kind, option


@pytest.mark.benchmark(group="table2")
def test_table2_runtime_grid(benchmark, emit):
    records: list[RunRecord] = []
    failures: list[str] = []

    def run_grid():
        for dataset, kind, option in _grid():
            graph = bench_graph(dataset)
            ka = run_kaleido(graph, kind, option, dataset)
            records.append(ka)
            ar = run_arabesque(graph, kind, option, dataset)
            records.append(ar)
            if ka.value_digest != ar.value_digest:
                failures.append(f"digest mismatch KA vs AR: {ka.key()}")
            try:
                rs = run_rstream(
                    graph, kind, option, dataset,
                    max_intermediate_bytes=RSTREAM_DISK_CAP,
                )
                records.append(rs)
                if ka.value_digest != rs.value_digest:
                    failures.append(f"digest mismatch KA vs RS: {ka.key()}")
            except StorageError:
                # The paper's '/' cell: intermediate data exceeded "disk".
                pass
        return records

    run_once(benchmark, run_grid)
    table = comparison_table(records, f"Table 2 — running time (profile: {PROFILE})")
    non_citeseer = [r for r in records if r.dataset != "citeseer"]
    summary = geomean_block(non_citeseer)
    emit(table + "\n\n" + summary + "\n(CiteSeer excluded, as in the paper)",
         name="table2_runtime")

    assert not failures, failures
    # Shape assertions: Kaleido wins on aggregate against both baselines
    # outside CiteSeer.
    by_key = {}
    for record in non_citeseer:
        by_key.setdefault(record.key(), {})[record.system] = record
    ar_ratios = [
        g["arabesque"].seconds / g["kaleido"].seconds
        for g in by_key.values()
        if "arabesque" in g and "kaleido" in g
    ]
    rs_ratios = [
        g["rstream"].seconds / g["kaleido"].seconds
        for g in by_key.values()
        if "rstream" in g and "kaleido" in g
    ]
    assert geomean(ar_ratios) > 1.0
    assert geomean(rs_ratios) > 1.0
