"""repro — a reproduction of Kaleido (ICDE 2020).

Kaleido is a single-machine, out-of-core graph mining system built on
three ideas: the Compressed Sparse Embedding (CSE) tensor encoding of
intermediate embeddings, the EigenHash characteristic-polynomial
isomorphism fingerprint for patterns under nine vertices, and hybrid
half-memory-half-disk storage with prediction-based load balancing.

Quickstart::

    from repro import KaleidoEngine, MotifCounting, datasets

    graph = datasets.load("citeseer")
    result = KaleidoEngine(graph).run(MotifCounting(3))
    print(result.value)        # {pattern_hash: count}
    print(result.summary())

See README.md for the full tour and DESIGN.md for the architecture.
"""

from .apps import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    MotifCounting,
    TriangleCounting,
)
from .core import (
    CSE,
    KaleidoEngine,
    MiningApplication,
    MiningResult,
    PartExecutor,
    Pattern,
    PatternHasher,
    Planner,
    SerialExecutor,
    SimulatedSchedule,
    ThreadedExecutor,
    eigen_hash,
)
from .graph import Graph, GraphBuilder, datasets
from .obs import MetricsRegistry, Tracer, write_chrome_trace
from .service import MiningService, QueryBudget, QueryRequest, QueryResult, TenantQuota
from .storage import MemoryBudget, MemoryMeter

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "datasets",
    "CSE",
    "Pattern",
    "eigen_hash",
    "PatternHasher",
    "KaleidoEngine",
    "MiningApplication",
    "MiningResult",
    "Planner",
    "PartExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "SimulatedSchedule",
    "MotifCounting",
    "CliqueDiscovery",
    "TriangleCounting",
    "FrequentSubgraphMining",
    "MiningService",
    "QueryRequest",
    "QueryResult",
    "QueryBudget",
    "TenantQuota",
    "MemoryMeter",
    "MemoryBudget",
    "Tracer",
    "MetricsRegistry",
    "write_chrome_trace",
    "__version__",
]
