"""Unit tests for CSE checkpoint save/load."""

import json
import os

import numpy as np
import pytest

from repro.core import CSE
from repro.core.explore import expand_vertex_level
from repro.errors import StorageError
from repro.storage import PartStore, SpillingSink, load_cse, save_cse


def _explored(graph, depth=2):
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    return cse


def test_roundtrip(tmp_path, paper_graph):
    cse = _explored(paper_graph)
    save_cse(cse, tmp_path)
    loaded = load_cse(tmp_path)
    assert loaded.depth == cse.depth
    assert [e for _, e in loaded.iter_embeddings()] == [
        e for _, e in cse.iter_embeddings()
    ]


def test_resume_exploration(tmp_path, paper_graph):
    """Load a checkpoint and keep exploring — same result as uninterrupted."""
    cse = _explored(paper_graph, depth=1)
    save_cse(cse, tmp_path)
    resumed = load_cse(tmp_path)
    expand_vertex_level(paper_graph, resumed)
    straight = _explored(paper_graph, depth=2)
    assert [e for _, e in resumed.iter_embeddings()] == [
        e for _, e in straight.iter_embeddings()
    ]


def test_checkpoint_spilled_level(tmp_path, paper_graph):
    store = PartStore(str(tmp_path / "spill"))
    cse = CSE(np.arange(paper_graph.num_vertices))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    expand_vertex_level(paper_graph, cse, parts=[(0, 3), (3, 6)], sink=sink)
    save_cse(cse, tmp_path / "ckpt")
    loaded = load_cse(tmp_path / "ckpt")
    assert [e for _, e in loaded.iter_embeddings()] == [
        e for _, e in cse.iter_embeddings()
    ]


def test_root_only_checkpoint(tmp_path):
    cse = CSE([3, 1, 4])
    save_cse(cse, tmp_path)
    loaded = load_cse(tmp_path)
    assert loaded.levels[0].vert_array().tolist() == [3, 1, 4]


def test_missing_manifest(tmp_path):
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_bad_version(tmp_path):
    (tmp_path / "cse_manifest.json").write_text(json.dumps({"version": 99}))
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_missing_level_file(tmp_path, paper_graph):
    cse = _explored(paper_graph)
    save_cse(cse, tmp_path)
    (vert_file,) = tmp_path.glob("level1_vert-*.npy")
    os.remove(vert_file)
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_overwrite_existing(tmp_path, paper_graph):
    save_cse(_explored(paper_graph, 1), tmp_path)
    save_cse(_explored(paper_graph, 2), tmp_path)
    assert load_cse(tmp_path).depth == 3


def test_overwrite_removes_stale_files(tmp_path, paper_graph):
    """The second save's GC leaves only files the new manifest references."""
    save_cse(_explored(paper_graph, 2), tmp_path)
    save_cse(_explored(paper_graph, 1), tmp_path)
    manifest = json.loads((tmp_path / "cse_manifest.json").read_text())
    referenced = {e["vert"] for e in manifest["levels"]}
    referenced |= {e["off"] for e in manifest["levels"] if "off" in e}
    on_disk = {p.name for p in tmp_path.glob("*.npy")}
    assert on_disk == referenced


def test_flipped_byte_fails_crc(tmp_path, paper_graph):
    from repro.errors import CorruptPartError

    save_cse(_explored(paper_graph), tmp_path)
    (vert_file,) = tmp_path.glob("level1_vert-*.npy")
    data = bytearray(vert_file.read_bytes())
    data[-1] ^= 0xFF
    vert_file.write_bytes(bytes(data))
    with pytest.raises(CorruptPartError):
        load_cse(tmp_path)


def _rewrite_off(tmp_path, mutate):
    """Replace level 1's off array (with a valid CRC) via ``mutate``."""
    import io
    import zlib

    manifest = json.loads((tmp_path / "cse_manifest.json").read_text())
    entry = manifest["levels"][1]
    off = np.load(tmp_path / entry["off"])
    buffer = io.BytesIO()
    np.save(buffer, mutate(off), allow_pickle=False)
    payload = buffer.getvalue()
    (tmp_path / entry["off"]).write_bytes(payload)
    entry["crc_off"] = zlib.crc32(payload)
    (tmp_path / "cse_manifest.json").write_text(json.dumps(manifest))


def test_off_must_span_vert(tmp_path, paper_graph):
    save_cse(_explored(paper_graph), tmp_path)

    def grow_last(off):
        off = off.copy()
        off[-1] += 1
        return off

    _rewrite_off(tmp_path, grow_last)
    with pytest.raises(StorageError, match="off spans"):
        load_cse(tmp_path)


def test_off_must_be_monotone(tmp_path, paper_graph):
    save_cse(_explored(paper_graph), tmp_path)

    def swap_interior(off):
        off = off.copy()
        off[1], off[2] = off[2] + 1, off[1]
        return off

    _rewrite_off(tmp_path, swap_interior)
    with pytest.raises(StorageError, match="non-decreasing"):
        load_cse(tmp_path)


def test_off_must_start_at_zero(tmp_path, paper_graph):
    save_cse(_explored(paper_graph), tmp_path)

    def bump_first(off):
        off = off.copy()
        off[0] = 1
        return off

    _rewrite_off(tmp_path, bump_first)
    with pytest.raises(StorageError, match="starts at"):
        load_cse(tmp_path)


def test_manifest_count_mismatch(tmp_path, paper_graph):
    save_cse(_explored(paper_graph), tmp_path)
    manifest = json.loads((tmp_path / "cse_manifest.json").read_text())
    manifest["levels"][1]["count"] += 1
    (tmp_path / "cse_manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StorageError, match="manifest says"):
        load_cse(tmp_path)
