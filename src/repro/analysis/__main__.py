"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage error.

Output formats:

``text``
    ``path:line:col: RULE message`` lines (default; editor-friendly).
``json``
    One JSON object with ``diagnostics``, ``unused_ignores`` and
    ``counts`` keys — the shape CI archives as a workflow artifact.
``github``
    ``::error file=...,line=...`` workflow annotations, so violations
    surface inline on the PR diff.
"""

from __future__ import annotations

import argparse
import json
import sys

from .linter import LintReport, lint_paths_report
from .rules import RULES

__all__ = ["main"]


def _emit(report: LintReport, fmt: str) -> None:
    if fmt == "json":
        counts: dict[str, int] = {}
        for diag in report.all():
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        payload = {
            "diagnostics": [diag.to_dict() for diag in report.diagnostics],
            "unused_ignores": [diag.to_dict() for diag in report.unused_ignores],
            "counts": dict(sorted(counts.items())),
        }
        print(json.dumps(payload, indent=2))
        return
    for diag in report.all():
        print(diag.format_github() if fmt == "github" else diag.format())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant lint suite: machine-check the engine's "
        "concurrency, determinism and resource-safety contracts "
        "(rules R001-R008).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (also bypasses module "
        "scoping), e.g. --select R001,R003",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--report-unused-ignores",
        action="store_true",
        help="also report '# repro: ignore[...]' comments that no longer "
        "suppress anything",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.id}  {rule.title}  [{scope}]")
        return 0

    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        report = lint_paths_report(
            args.paths,
            select=select,
            report_unused_ignores=args.report_unused_ignores,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit(report, args.format)
    findings = report.all()
    if findings:
        noun = "violation" if len(findings) == 1 else "violations"
        print(f"found {len(findings)} {noun}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
