"""Integration: the three systems agree on every application and the
performance/memory ordering matches the paper's shape."""

import pytest

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    TriangleCounting,
)
from repro.baselines import ArabesqueLikeEngine, RStreamLikeEngine
from repro.graph import datasets


@pytest.fixture(scope="module")
def tiny_citeseer():
    return datasets.load("citeseer", "tiny")


@pytest.fixture(scope="module")
def tiny_mico():
    return datasets.load("mico", "tiny")


def test_motif_agreement(tiny_citeseer, tmp_path):
    ka = KaleidoEngine(tiny_citeseer).run(MotifCounting(3))
    ar = ArabesqueLikeEngine(tiny_citeseer).run_motif(3)
    with RStreamLikeEngine(tiny_citeseer, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_motif(3)
    assert sorted(ka.value.values()) == sorted(ar.value.values())
    assert sorted(ka.value.values()) == sorted(rs.value.values())


def test_triangle_agreement(tiny_mico, tmp_path):
    ka = KaleidoEngine(tiny_mico).run(TriangleCounting()).value
    ar = ArabesqueLikeEngine(tiny_mico).run_triangles().value
    with RStreamLikeEngine(tiny_mico, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_triangles().value
    assert ka == ar == rs > 0


def test_clique_agreement(tiny_mico, tmp_path):
    ka = KaleidoEngine(tiny_mico).run(CliqueDiscovery(4)).value.count
    ar = ArabesqueLikeEngine(tiny_mico).run_clique(4).value
    with RStreamLikeEngine(tiny_mico, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_clique(4).value
    assert ka == ar == rs


def test_fsm_agreement(tiny_citeseer, tmp_path):
    ka = KaleidoEngine(tiny_citeseer).run(
        FrequentSubgraphMining(2, 5, exact_mni=True)
    )
    ar = ArabesqueLikeEngine(tiny_citeseer).run_fsm(2, 5)
    with RStreamLikeEngine(tiny_citeseer, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_fsm(2, 5)
    assert sorted(dict(ka.value).values()) == sorted(dict(ar.value).values())
    assert sorted(dict(ka.value).values()) == sorted(dict(rs.value).values())


def test_kaleido_memory_beats_baselines(tiny_mico, tmp_path):
    """Figure 10's shape: Kaleido's accounted memory below both baselines."""
    ka = KaleidoEngine(tiny_mico).run(MotifCounting(4))
    ar = ArabesqueLikeEngine(tiny_mico).run_motif(4)
    with RStreamLikeEngine(tiny_mico, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_motif(4)
    assert ka.peak_memory_bytes < ar.peak_memory_bytes
    assert ka.peak_memory_bytes < rs.peak_memory_bytes


def test_kaleido_faster_than_rstream(tiny_mico, tmp_path):
    """Table 2's strongest ordering: Kaleido beats the relational engine."""
    ka = KaleidoEngine(tiny_mico).run(MotifCounting(4))
    with RStreamLikeEngine(tiny_mico, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_motif(4)
    assert ka.wall_seconds < rs.wall_seconds
