"""Figure 10: memory-reduction factors of Kaleido vs the baselines.

For each application over MiCo / Patent / Youtube, reports
``baseline_memory / kaleido_memory`` — the paper plots these as bar
charts (GeoMean 7.2x vs Arabesque and 9.9x vs RStream overall).
"""

import pytest

from repro.bench import (
    PROFILE,
    bench_graph,
    format_table,
    geomean,
    run_arabesque,
    run_kaleido,
    run_rstream,
)

from conftest import run_once

#: A lighter grid than Table 2 — memory factors need one support level.
GRID = [("fsm", 5), ("motif", 3), ("clique", 4), ("tc", None)]
DATASETS = ["mico", "patent", "youtube"]


@pytest.mark.benchmark(group="fig10")
def test_fig10_memory_reduction(benchmark, emit):
    cells = {}

    def run_grid():
        for dataset in DATASETS:
            graph = bench_graph(dataset)
            for kind, option in GRID:
                ka = run_kaleido(graph, kind, option, dataset)
                ar = run_arabesque(graph, kind, option, dataset)
                rs = run_rstream(graph, kind, option, dataset)
                cells[(dataset, ka.app)] = (ka, ar, rs)
        return cells

    run_once(benchmark, run_grid)

    rows, ar_factors, rs_factors = [], [], []
    for (dataset, app), (ka, ar, rs) in cells.items():
        fa = ar.memory_bytes / max(1, ka.memory_bytes)
        fr = rs.memory_bytes / max(1, ka.memory_bytes)
        ar_factors.append(fa)
        rs_factors.append(fr)
        rows.append([app, dataset, f"{fa:.1f}x", f"{fr:.1f}x"])
    rows.append(
        ["GeoMean", "-", f"{geomean(ar_factors):.1f}x", f"{geomean(rs_factors):.1f}x"]
    )
    table = format_table(
        ["App", "Dataset", "vs Arabesque", "vs RStream"],
        rows,
        title=f"Figure 10 — memory reduction factors (profile: {PROFILE})",
    )
    emit(table, name="fig10_memory_reduction")

    # Paper shape: overall reduction > 1x against both systems.
    assert geomean(ar_factors) > 1.0
    assert geomean(rs_factors) > 1.0
